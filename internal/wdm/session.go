package wdm

import (
	"fmt"
	"slices"

	"wavedag/internal/core"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/load"
	"wavedag/internal/route"
)

// SessionID identifies a provisioned request inside one Session. It
// packs a recycled slot index with a per-slot generation, so lookups
// are O(1) array reads, stale ids from torn-down requests are detected
// (not silently resolved to a newer occupant), and a long-lived session
// does not grow with the number of operations, only with the peak
// number of live requests. Treat it as opaque.
type SessionID int64

// Session is a long-lived, incrementally maintained provisioning run —
// the dynamic counterpart of the one-shot Provision pipeline. A session
// holds persistent state in every layer:
//
//   - routing: the strategy's RoutingState (reusable Router / UPP
//     tables) survives across requests;
//   - load: a load.Tracker accounts arc loads under Add/Remove in
//     O(len(path));
//   - conflicts: the coloring strategy's state (for "incremental", a
//     conflict.Dynamic) maintains the conflict graph under churn with
//     arc-indexed overlap detection;
//   - wavelengths: maintained online (first-fit + bounded repair +
//     slack-gated full recolor) instead of recomputed per event.
//
// So a request arrival or teardown costs work proportional to the paths
// it actually touches, not to the whole live family — see the churn
// benchmarks in cmd/bench for the measured per-event speedup over
// rebuild-from-scratch.
//
// A Session is not safe for concurrent use.
type Session struct {
	net      *Network
	routing  RoutingState
	coloring ColoringState
	tracker  *load.Tracker

	routingName  string
	coloringName string

	entries []sessionEntry
	freeIdx []int32
	live    int
}

type sessionEntry struct {
	gen   uint32
	alive bool
	slot  int
	req   route.Request
	path  *dipath.Path
}

func packID(idx int32, gen uint32) SessionID {
	return SessionID(uint64(gen)<<32 | uint64(uint32(idx)))
}

// lookup resolves id to its live entry.
func (s *Session) lookup(id SessionID) (*sessionEntry, error) {
	idx := int64(uint32(id))
	gen := uint32(uint64(id) >> 32)
	if idx >= int64(len(s.entries)) {
		return nil, fmt.Errorf("wdm: unknown session id %d", id)
	}
	e := &s.entries[idx]
	if !e.alive || e.gen != gen {
		return nil, fmt.Errorf("wdm: session id %d is not live", id)
	}
	return e, nil
}

// sessionConfig collects NewSession options.
type sessionConfig struct {
	routing  RoutingStrategy
	coloring ColoringStrategy
	slack    int
	capacity int
}

// SessionOption configures NewSession.
type SessionOption func(*sessionConfig) error

// WithRoutingStrategy selects the routing strategy (default: shortest).
func WithRoutingStrategy(s RoutingStrategy) SessionOption {
	return func(c *sessionConfig) error {
		if s == nil {
			return fmt.Errorf("wdm: nil routing strategy")
		}
		c.routing = s
		return nil
	}
}

// WithRoutingPolicy selects the routing strategy registered for the
// legacy policy constant.
func WithRoutingPolicy(p RoutingPolicy) SessionOption {
	return func(c *sessionConfig) error {
		s, err := p.Strategy()
		if err != nil {
			return err
		}
		c.routing = s
		return nil
	}
}

// WithColoringStrategy selects the coloring strategy (default:
// incremental).
func WithColoringStrategy(s ColoringStrategy) SessionOption {
	return func(c *sessionConfig) error {
		if s == nil {
			return fmt.Errorf("wdm: nil coloring strategy")
		}
		c.coloring = s
		return nil
	}
}

// WithColoringStrategyName selects a registered coloring strategy.
func WithColoringStrategyName(name string) SessionOption {
	return func(c *sessionConfig) error {
		s, ok := LookupColoringStrategy(name)
		if !ok {
			return fmt.Errorf("wdm: unknown coloring strategy %q", name)
		}
		c.coloring = s
		return nil
	}
}

// WithSlack sets how many wavelengths the incremental coloring may
// drift above its lower bound before a full recolor is forced (<= 0
// selects the default).
func WithSlack(slack int) SessionOption {
	return func(c *sessionConfig) error {
		c.slack = slack
		return nil
	}
}

// WithCapacityHint pre-sizes the session's request table for the
// expected number of simultaneously live requests, avoiding growth
// reallocations on the fill path (Provision passes len(reqs)).
func WithCapacityHint(n int) SessionOption {
	return func(c *sessionConfig) error {
		if n > 0 {
			c.capacity = n
		}
		return nil
	}
}

// NewSession opens a dynamic provisioning session on the network. The
// defaults are shortest-path routing and incremental coloring.
func (n *Network) NewSession(opts ...SessionOption) (*Session, error) {
	cfg := sessionConfig{}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.routing == nil {
		var err error
		if cfg.routing, err = RouteShortest.Strategy(); err != nil {
			return nil, err
		}
	}
	if cfg.coloring == nil {
		s, ok := LookupColoringStrategy(ColoringIncremental)
		if !ok {
			return nil, fmt.Errorf("wdm: incremental coloring strategy not registered")
		}
		cfg.coloring = s
	}
	routing, err := cfg.routing.NewState(n.Topology)
	if err != nil {
		return nil, fmt.Errorf("wdm: routing setup: %w", err)
	}
	coloring, err := cfg.coloring.NewState(n.Topology, cfg.slack)
	if err != nil {
		return nil, fmt.Errorf("wdm: coloring setup: %w", err)
	}
	return &Session{
		net:          n,
		routing:      routing,
		coloring:     coloring,
		tracker:      load.NewTracker(n.Topology),
		routingName:  cfg.routing.Name(),
		coloringName: cfg.coloring.Name(),
		entries:      make([]sessionEntry, 0, cfg.capacity),
	}, nil
}

// RoutingStrategyName returns the name of the session's routing
// strategy.
func (s *Session) RoutingStrategyName() string { return s.routingName }

// ColoringStrategyName returns the name of the session's coloring
// strategy.
func (s *Session) ColoringStrategyName() string { return s.coloringName }

// Len returns the number of live requests.
func (s *Session) Len() int { return s.live }

// Pi returns the current load π of the live routing.
func (s *Session) Pi() int { return s.tracker.Pi() }

// NumLambda returns the number of wavelengths currently in use. With
// the incremental strategy this is O(1); with the full strategy it
// recomputes from scratch.
func (s *Session) NumLambda() (int, error) { return s.coloring.NumLambda() }

// Add routes req, inserts it into the conflict and load state, assigns
// a wavelength, and returns its id.
func (s *Session) Add(req route.Request) (SessionID, error) {
	p, err := s.routing.Route(req, s.tracker)
	if err != nil {
		return 0, fmt.Errorf("wdm: routing: %w", err)
	}
	slot, err := s.coloring.Add(p)
	if err != nil {
		return 0, fmt.Errorf("wdm: coloring: %w", err)
	}
	s.tracker.Add(p)
	var idx int32
	if n := len(s.freeIdx); n > 0 {
		idx = s.freeIdx[n-1]
		s.freeIdx = s.freeIdx[:n-1]
	} else {
		s.entries = append(s.entries, sessionEntry{})
		idx = int32(len(s.entries) - 1)
	}
	e := &s.entries[idx]
	e.alive, e.slot, e.req, e.path = true, slot, req, p
	s.live++
	return packID(idx, e.gen), nil
}

// Remove tears down the request with the given id, releasing its
// wavelength and load.
func (s *Session) Remove(id SessionID) error {
	e, err := s.lookup(id)
	if err != nil {
		return err
	}
	if err := s.coloring.Remove(e.slot); err != nil {
		return err
	}
	s.tracker.Remove(e.path)
	s.release(id, e)
	return nil
}

// release retires a live entry: the slot index is recycled under a new
// generation, so the old id stops resolving.
func (s *Session) release(id SessionID, e *sessionEntry) {
	e.alive = false
	e.gen++
	e.path = nil
	s.freeIdx = append(s.freeIdx, int32(uint32(id)))
	s.live--
}

// Reroute re-routes the request with the given id against the current
// loads (excluding itself) and, when the route changes, reassigns its
// wavelength. It reports whether the path changed.
func (s *Session) Reroute(id SessionID) (bool, error) {
	e, err := s.lookup(id)
	if err != nil {
		return false, err
	}
	// Route against the loads without this request, as a fresh arrival
	// would see them.
	s.tracker.Remove(e.path)
	p, err := s.routing.Route(e.req, s.tracker)
	if err != nil {
		s.tracker.Add(e.path) // restore
		return false, fmt.Errorf("wdm: rerouting: %w", err)
	}
	if p.Equal(e.path) {
		s.tracker.Add(e.path)
		return false, nil
	}
	if err := s.coloring.Remove(e.slot); err != nil {
		s.tracker.Add(e.path)
		return false, err
	}
	slot, err := s.coloring.Add(p)
	if err != nil {
		// Try to restore the old path; the session must stay consistent.
		if oldSlot, restoreErr := s.coloring.Add(e.path); restoreErr == nil {
			e.slot = oldSlot
			s.tracker.Add(e.path)
			return false, fmt.Errorf("wdm: rerouting: %w", err)
		}
		s.release(id, e)
		return false, fmt.Errorf("wdm: rerouting: %w (request %d dropped)", err, id)
	}
	s.tracker.Add(p)
	e.slot, e.path = slot, p
	return true, nil
}

// Path returns the current route of a live request.
func (s *Session) Path(id SessionID) (*dipath.Path, error) {
	e, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	return e.path, nil
}

// Wavelength returns the current wavelength of a live request, or -1
// when the session's coloring strategy defers assignment (see
// Provisioning for the materialised answer).
func (s *Session) Wavelength(id SessionID) (int, error) {
	e, err := s.lookup(id)
	if err != nil {
		return -1, err
	}
	return s.coloring.Wavelength(e.slot), nil
}

// IDs returns the live session ids in slot order — a deterministic
// order that equals arrival order until slots are recycled by Remove.
// Provisioning and Verify materialise the live set in the same order.
func (s *Session) IDs() []SessionID {
	ids := make([]SessionID, 0, s.live)
	for idx := range s.entries {
		if e := &s.entries[idx]; e.alive {
			ids = append(ids, packID(int32(idx), e.gen))
		}
	}
	return ids
}

// snapshot materialises the live set in slot order (see IDs).
func (s *Session) snapshot() (slots []int, fam dipath.Family) {
	slots = make([]int, 0, s.live)
	fam = make(dipath.Family, 0, s.live)
	for idx := range s.entries {
		if e := &s.entries[idx]; e.alive {
			slots = append(slots, e.slot)
			fam = append(fam, e.path)
		}
	}
	return slots, fam
}

// Provisioning materialises the session's current state as a
// Provisioning, with paths and wavelengths in id order (see IDs).
func (s *Session) Provisioning() (*Provisioning, error) {
	return s.provisioning(false)
}

// provisioning materialises the live set. With aliasLive, a coloring
// state whose slot table is dense (DenseFamilyState) hands its table
// over directly — zero copies, but the resulting Provisioning aliases
// live session state, so only callers that discard the session
// afterwards (one-shot Provision) may ask for it.
func (s *Session) provisioning(aliasLive bool) (*Provisioning, error) {
	var slots []int
	var fam dipath.Family
	if aliasLive {
		if ds, ok := s.coloring.(DenseFamilyState); ok {
			fam, _ = ds.DenseFamily()
		}
	}
	if fam == nil {
		slots, fam = s.snapshot()
	}
	colors, num, method, err := s.coloring.Assignment(slots, fam)
	if err != nil {
		return nil, fmt.Errorf("wdm: wavelength assignment: %w", err)
	}
	p := &Provisioning{
		Paths:       fam,
		Wavelengths: colors,
		NumLambda:   num,
		Pi:          s.tracker.Pi(),
		Method:      method,
		ADMs:        countADMs(fam, colors),
	}
	p.Feasible = s.net.Wavelengths == 0 || p.NumLambda <= s.net.Wavelengths
	return p, nil
}

// Verify checks the session's live wavelength assignment against the
// invariant: arc-sharing dipaths carry distinct wavelengths. It is the
// safety net the incremental engine is pinned to in tests.
func (s *Session) Verify() error {
	slots, fam := s.snapshot()
	colors, num, _, err := s.coloring.Assignment(slots, fam)
	if err != nil {
		return err
	}
	res := &core.Result{Colors: colors, NumColors: num, Pi: s.tracker.Pi()}
	return core.Verify(s.net.Topology, fam, res)
}

// countADMs counts the add-drop multiplexers of an assignment: one ADM
// terminates lightpaths at each distinct (endpoint vertex, wavelength)
// pair, so lightpaths that chain through a node on one wavelength share
// the ADM there instead of being double-counted (the flat 2·|family|
// the earlier versions reported). Terminations are packed into int64s
// and sort-deduplicated — cheaper than a map at provisioning sizes.
func countADMs(fam dipath.Family, colors []int) int {
	terms := make([]int64, 0, 2*len(fam))
	pack := func(v digraph.Vertex, c int) int64 {
		return int64(v)<<32 | int64(uint32(c))
	}
	for i, p := range fam {
		terms = append(terms, pack(p.First(), colors[i]), pack(p.Last(), colors[i]))
	}
	slices.Sort(terms)
	count := 0
	for i, t := range terms {
		if i == 0 || t != terms[i-1] {
			count++
		}
	}
	return count
}
