package wdm

import (
	"errors"
	"fmt"
	"slices"

	"wavedag/internal/core"
	"wavedag/internal/cycles"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/load"
	"wavedag/internal/route"
)

// SessionID identifies a provisioned request inside one Session. It
// packs a recycled slot index with a per-slot generation, so lookups
// are O(1) array reads, stale ids from torn-down requests are detected
// (not silently resolved to a newer occupant), and a long-lived session
// does not grow with the number of operations, only with the peak
// number of live requests. Treat it as opaque.
type SessionID int64

// Session is a long-lived, incrementally maintained provisioning run —
// the dynamic counterpart of the one-shot Provision pipeline. A session
// holds persistent state in every layer:
//
//   - routing: the strategy's RoutingState (reusable Router / UPP
//     tables) survives across requests;
//   - load: a load.Tracker accounts arc loads under Add/Remove in
//     O(len(path));
//   - conflicts: the coloring strategy's state (for "incremental", a
//     conflict.Dynamic) maintains the conflict graph under churn with
//     arc-indexed overlap detection;
//   - wavelengths: maintained online (first-fit + bounded repair +
//     slack-gated full recolor) instead of recomputed per event.
//
// So a request arrival or teardown costs work proportional to the paths
// it actually touches, not to the whole live family — see the churn
// benchmarks in cmd/bench for the measured per-event speedup over
// rebuild-from-scratch.
//
// A Session is not safe for concurrent use.
type Session struct {
	net      *Network
	routing  RoutingState
	coloring ColoringState
	tracker  *load.Tracker

	routingName  string
	coloringName string

	// Budgeted admission (see WithWavelengthBudget). cycleFree gates the
	// Theorem-1 precheck; rollbackProbe is the ablation knob forcing the
	// general-DAG color-then-rollback path.
	budget         int
	cycleFree      bool
	rollbackProbe  bool
	admission      AdmissionState
	admissionName  string
	stats          AdmissionStats
	bestEffortLive int

	entries []sessionEntry
	freeIdx []int32
	live    int

	// Survivability (see survive.go): dark-parked entries, the storm
	// retry budget, failure counters, the slot→entry reverse index the
	// arc-incidence affected lookup resolves through, the lazily built
	// detour router, and the engine's path-delta observer.
	dark          int
	darkSeq       uint64
	stormRetries  int
	failStats     FailureStats
	slotEntry     []int32
	stormRouter   *route.Router
	pathDeltaHook func(add bool, p *dipath.Path)
}

type sessionEntry struct {
	gen        uint32
	alive      bool
	bestEffort bool // admitted past the budget by the degrade strategy
	dark       bool // parked by a restoration storm; excluded from λ/π
	slot       int
	darkAt     uint64 // park order stamp (oldest-first revival)
	req        route.Request
	path       *dipath.Path
}

func packID(idx int32, gen uint32) SessionID {
	return SessionID(uint64(gen)<<32 | uint64(uint32(idx)))
}

// ErrUnknownSession is the sentinel wrapped by every session lookup
// failure — ids the session never issued, double-removed ids, and stale
// ids whose slot was recycled under a newer generation. Operations
// failing a lookup mutate no state, so callers may errors.Is on it and
// carry on.
var ErrUnknownSession = errors.New("no such live session id")

// lookup resolves id to its live entry.
func (s *Session) lookup(id SessionID) (*sessionEntry, error) {
	idx := int64(uint32(id))
	gen := uint32(uint64(id) >> 32)
	if idx >= int64(len(s.entries)) {
		return nil, fmt.Errorf("wdm: unknown session id %d: %w", id, ErrUnknownSession)
	}
	e := &s.entries[idx]
	if !e.alive || e.gen != gen {
		return nil, fmt.Errorf("wdm: session id %d: %w", id, ErrUnknownSession)
	}
	return e, nil
}

// sessionConfig collects NewSession options.
type sessionConfig struct {
	routing       RoutingStrategy
	coloring      ColoringStrategy
	admission     AdmissionStrategy
	slack         int
	capacity      int
	budget        int
	stormRetries  int // -1 = default (2 per affected path)
	rollbackProbe bool
}

// SessionOption configures NewSession.
type SessionOption func(*sessionConfig) error

// WithRoutingStrategy selects the routing strategy (default: shortest).
func WithRoutingStrategy(s RoutingStrategy) SessionOption {
	return func(c *sessionConfig) error {
		if s == nil {
			return fmt.Errorf("wdm: nil routing strategy")
		}
		c.routing = s
		return nil
	}
}

// WithRoutingPolicy selects the routing strategy registered for the
// legacy policy constant.
func WithRoutingPolicy(p RoutingPolicy) SessionOption {
	return func(c *sessionConfig) error {
		s, err := p.Strategy()
		if err != nil {
			return err
		}
		c.routing = s
		return nil
	}
}

// WithColoringStrategy selects the coloring strategy (default:
// incremental).
func WithColoringStrategy(s ColoringStrategy) SessionOption {
	return func(c *sessionConfig) error {
		if s == nil {
			return fmt.Errorf("wdm: nil coloring strategy")
		}
		c.coloring = s
		return nil
	}
}

// WithColoringStrategyName selects a registered coloring strategy.
func WithColoringStrategyName(name string) SessionOption {
	return func(c *sessionConfig) error {
		s, ok := LookupColoringStrategy(name)
		if !ok {
			return fmt.Errorf("wdm: unknown coloring strategy %q", name)
		}
		c.coloring = s
		return nil
	}
}

// WithSlack sets how many wavelengths the incremental coloring may
// drift above its lower bound before a full recolor is forced (<= 0
// selects the default).
func WithSlack(slack int) SessionOption {
	return func(c *sessionConfig) error {
		c.slack = slack
		return nil
	}
}

// WithCapacityHint pre-sizes the session's request table for the
// expected number of simultaneously live requests, avoiding growth
// reallocations on the fill path (Provision passes len(reqs)).
func WithCapacityHint(n int) SessionOption {
	return func(c *sessionConfig) error {
		if n > 0 {
			c.capacity = n
		}
		return nil
	}
}

// WithWavelengthBudget caps the session at w wavelengths: every Add and
// TryAdd runs budget admission before any state mutates — the O(path)
// Theorem-1 load precheck on internal-cycle-free topologies (a family
// fits in w wavelengths there exactly when its load is at most w), a
// color-then-rollback probe on general DAGs — and over-budget requests
// are handed to the session's admission strategy (default: reject).
// w <= 0 means unlimited, the default.
func WithWavelengthBudget(w int) SessionOption {
	return func(c *sessionConfig) error {
		if w < 0 {
			return fmt.Errorf("wdm: wavelength budget must be >= 0, got %d", w)
		}
		c.budget = w
		return nil
	}
}

// WithAdmissionStrategy selects how a budgeted session handles requests
// that fail the budget check (default: the "reject" strategy).
func WithAdmissionStrategy(s AdmissionStrategy) SessionOption {
	return func(c *sessionConfig) error {
		if s == nil {
			return fmt.Errorf("wdm: nil admission strategy")
		}
		c.admission = s
		return nil
	}
}

// WithAdmissionStrategyName selects a registered admission strategy
// (AdmissionReject, AdmissionRetryAltRoute or AdmissionDegrade for the
// built-ins).
func WithAdmissionStrategyName(name string) SessionOption {
	return func(c *sessionConfig) error {
		s, ok := LookupAdmissionStrategy(name)
		if !ok {
			return fmt.Errorf("wdm: unknown admission strategy %q", name)
		}
		c.admission = s
		return nil
	}
}

// WithStormRetryBudget bounds the min-load detour retries one
// restoration storm may spend across all its affected paths (see
// Session.FailArc). n = 0 disables detours (primary reroute only);
// n < 0 selects the default of two detours per affected path.
func WithStormRetryBudget(n int) SessionOption {
	return func(c *sessionConfig) error {
		if n < 0 {
			n = -1
		}
		c.stormRetries = n
		return nil
	}
}

// WithAdmissionRollbackProbe forces the general-DAG color-then-rollback
// admission probe even on internal-cycle-free topologies. It exists as
// the ablation axis of the admission benchmarks (pricing the Theorem-1
// precheck against the fallback it replaces); production sessions have
// no reason to set it.
func WithAdmissionRollbackProbe() SessionOption {
	return func(c *sessionConfig) error {
		c.rollbackProbe = true
		return nil
	}
}

// NewSession opens a dynamic provisioning session on the network. The
// defaults are shortest-path routing and incremental coloring.
func (n *Network) NewSession(opts ...SessionOption) (*Session, error) {
	cfg := sessionConfig{stormRetries: -1}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.routing == nil {
		var err error
		if cfg.routing, err = RouteShortest.Strategy(); err != nil {
			return nil, err
		}
	}
	if cfg.coloring == nil {
		s, ok := LookupColoringStrategy(ColoringIncremental)
		if !ok {
			return nil, fmt.Errorf("wdm: incremental coloring strategy not registered")
		}
		cfg.coloring = s
	}
	if cfg.budget > 0 && cfg.admission == nil {
		a, ok := LookupAdmissionStrategy(AdmissionReject)
		if !ok {
			return nil, fmt.Errorf("wdm: reject admission strategy not registered")
		}
		cfg.admission = a
	}
	routing, err := cfg.routing.NewState(n.Topology)
	if err != nil {
		return nil, fmt.Errorf("wdm: routing setup: %w", err)
	}
	coloring, err := cfg.coloring.NewState(n.Topology, cfg.slack)
	if err != nil {
		return nil, fmt.Errorf("wdm: coloring setup: %w", err)
	}
	s := &Session{
		net:           n,
		routing:       routing,
		coloring:      coloring,
		tracker:       load.NewTracker(n.Topology),
		routingName:   cfg.routing.Name(),
		coloringName:  cfg.coloring.Name(),
		budget:        cfg.budget,
		stormRetries:  cfg.stormRetries,
		rollbackProbe: cfg.rollbackProbe,
		entries:       make([]sessionEntry, 0, cfg.capacity),
	}
	if cfg.admission != nil {
		s.admission, err = cfg.admission.NewState(n.Topology)
		if err != nil {
			return nil, fmt.Errorf("wdm: admission setup: %w", err)
		}
		s.admissionName = cfg.admission.Name()
	}
	if cfg.budget > 0 {
		// The Theorem-1 precheck is sound exactly when the topology has no
		// internal cycle; one O(V+A) scan at construction decides which
		// admission path every later offer takes.
		s.cycleFree = !cycles.HasInternalCycle(n.Topology)
	}
	return s, nil
}

// RoutingStrategyName returns the name of the session's routing
// strategy.
func (s *Session) RoutingStrategyName() string { return s.routingName }

// ColoringStrategyName returns the name of the session's coloring
// strategy.
func (s *Session) ColoringStrategyName() string { return s.coloringName }

// AdmissionStrategyName returns the name of the session's admission
// strategy, or "" when the session has none configured.
func (s *Session) AdmissionStrategyName() string { return s.admissionName }

// Budget returns the session's wavelength budget (0 = unlimited).
func (s *Session) Budget() int { return s.budget }

// AdmissionStats returns the session's cumulative admission counters.
// Unbudgeted sessions count every offer as accepted, so the engine's
// per-lane traffic shares work with or without a budget.
func (s *Session) AdmissionStats() AdmissionStats { return s.stats }

// BestEffortLive returns how many live requests were admitted past the
// budget by the degrade strategy. While it is non-zero the session's
// λ ≤ budget invariant is suspended.
func (s *Session) BestEffortLive() int { return s.bestEffortLive }

// IsBestEffort reports whether the live request id was admitted past
// the budget.
func (s *Session) IsBestEffort(id SessionID) (bool, error) {
	e, err := s.lookup(id)
	if err != nil {
		return false, err
	}
	return e.bestEffort, nil
}

// Len returns the number of live requests.
func (s *Session) Len() int { return s.live }

// Pi returns the current load π of the live routing.
func (s *Session) Pi() int { return s.tracker.Pi() }

// ArcLoads returns a copy of the session's per-arc load vector — the
// observability twin of ShardedEngine.ArcLoads (budget experiments read
// it to find saturated arcs).
func (s *Session) ArcLoads() []int { return s.tracker.Loads() }

// ArcLoadsInto is ArcLoads with a caller-owned buffer: dst is resized
// to the arc count reusing its capacity, so a polling caller pays no
// per-call allocation (see Tracker.LoadsInto).
func (s *Session) ArcLoadsInto(dst []int) []int { return s.tracker.LoadsInto(dst) }

// NumLambda returns the number of wavelengths currently in use. With
// the incremental strategy this is O(1); with the full strategy it
// recomputes from scratch.
func (s *Session) NumLambda() (int, error) { return s.coloring.NumLambda() }

// Add routes req, runs budget admission when one is configured,
// inserts the request into the conflict and load state, assigns a
// wavelength, and returns its id. On a budgeted session a rejection is
// an error wrapping ErrBudgetExceeded; TryAdd reports the same outcome
// without the error detour.
func (s *Session) Add(req route.Request) (SessionID, error) {
	id, adm, err := s.TryAdd(req)
	if err != nil {
		return 0, err
	}
	if !adm.Accepted {
		return 0, fmt.Errorf("wdm: admission: %w (budget %d)", ErrBudgetExceeded, s.budget)
	}
	return id, nil
}

// TryAdd routes req and runs it through budget admission: accepted
// requests are provisioned and their id returned; rejected requests
// leave the session untouched and report Accepted=false without an
// error (errors are reserved for genuine failures — no route, invalid
// paths). Unbudgeted sessions accept everything.
func (s *Session) TryAdd(req route.Request) (SessionID, Admission, error) {
	p, err := s.routing.Route(req, s.tracker)
	if err != nil {
		return 0, Admission{}, fmt.Errorf("wdm: routing: %w", err)
	}
	if s.pathCrossesFailure(p) {
		// Failure-blind strategies (UPP's unique routing) can propose a
		// path over a cut fiber; to the caller that is no route.
		return 0, Admission{}, fmt.Errorf("wdm: routing: %w", route.ErrNoRoute{Req: req})
	}
	return s.tryAdmit(req, p)
}

// TryAddPath runs admission and insertion for a pre-routed dipath,
// bypassing the routing strategy — the "requests already routed" regime
// groom.Online drives. The entry's request takes p's endpoints, so a
// later Reroute re-routes it through the session's strategy.
func (s *Session) TryAddPath(p *dipath.Path) (SessionID, Admission, error) {
	if p == nil {
		return 0, Admission{}, fmt.Errorf("wdm: nil dipath")
	}
	// Validate up front: the admission precheck indexes the tracker by
	// p's arcs before any layer that would catch a foreign path.
	if err := p.Validate(s.net.Topology); err != nil {
		return 0, Admission{}, err
	}
	if s.pathCrossesFailure(p) {
		return 0, Admission{}, fmt.Errorf("wdm: dipath crosses a failed arc")
	}
	return s.tryAdmit(route.Request{Src: p.First(), Dst: p.Last()}, p)
}

// tryAdmit is the admission funnel shared by TryAdd and TryAddPath:
// budget check, then the admission strategy for over-budget offers,
// with the outcome counters maintained on every exit.
func (s *Session) tryAdmit(req route.Request, p *dipath.Path) (SessionID, Admission, error) {
	s.stats.Requests++
	id, ok, err := s.admitCommit(req, p)
	if err != nil {
		return 0, Admission{}, err
	}
	if ok {
		s.stats.Accepted++
		return id, Admission{Accepted: true}, nil
	}
	id, adm, err := s.admission.Admit(&AdmissionContext{s: s, req: req, path: p})
	if err != nil {
		return 0, Admission{}, err
	}
	if adm.Accepted {
		s.stats.Accepted++
		if adm.BestEffort {
			s.stats.BestEffort++
		}
		if adm.Retried {
			s.stats.Retried++
		}
	} else {
		s.stats.Rejected++
	}
	return id, adm, nil
}

// admitCommit runs the budget check for p and inserts it when admitted.
// Cycle-free topologies use the Theorem-1 precheck — O(len(p)) against
// the live tracker, nothing touched on rejection; general DAGs (or
// sessions forcing the ablation probe) color-then-rollback through the
// coloring layer, reusing the same restore discipline as Reroute's
// failure path.
func (s *Session) admitCommit(req route.Request, p *dipath.Path) (SessionID, bool, error) {
	if s.budget <= 0 {
		id, err := s.commitPath(req, p, false)
		return id, err == nil, err
	}
	if s.cycleFree && !s.rollbackProbe {
		if !s.tracker.FitsAdditional(p, s.budget) {
			return 0, false, nil
		}
		id, err := s.commitPath(req, p, false)
		if err != nil {
			return 0, false, err
		}
		s.enforceBudgetLambda()
		return id, true, nil
	}
	slot, ok, err := s.colorUnderBudget(p)
	if err != nil {
		return 0, false, fmt.Errorf("wdm: coloring: %w", err)
	}
	if !ok {
		return 0, false, nil
	}
	return s.insertEntry(req, p, slot, false), true, nil
}

// colorUnderBudget is the color-then-rollback admission probe: insert p
// into the coloring layer only if the live assignment stays within the
// budget. States implementing BudgetedColoringState do it natively
// (exact rollback, one repack retry); any other state gets the generic
// add-measure-rollback.
func (s *Session) colorUnderBudget(p *dipath.Path) (int, bool, error) {
	if bs, ok := s.coloring.(BudgetedColoringState); ok {
		return bs.AddUnderLimit(p, s.budget)
	}
	slot, err := s.coloring.Add(p)
	if err != nil {
		return -1, false, err
	}
	n, err := s.coloring.NumLambda()
	if err == nil && n <= s.budget {
		return slot, true, nil
	}
	if rerr := s.coloring.Remove(slot); rerr != nil && err == nil {
		err = rerr
	}
	return -1, false, err
}

// commitPath inserts a routed-and-admitted path: coloring, load, entry.
func (s *Session) commitPath(req route.Request, p *dipath.Path, bestEffort bool) (SessionID, error) {
	slot, err := s.coloring.Add(p)
	if err != nil {
		return 0, fmt.Errorf("wdm: coloring: %w", err)
	}
	return s.insertEntry(req, p, slot, bestEffort), nil
}

// insertEntry accounts p in the load tracker and allocates its entry.
func (s *Session) insertEntry(req route.Request, p *dipath.Path, slot int, bestEffort bool) SessionID {
	s.trackAdd(p)
	var idx int32
	if n := len(s.freeIdx); n > 0 {
		idx = s.freeIdx[n-1]
		s.freeIdx = s.freeIdx[:n-1]
	} else {
		s.entries = append(s.entries, sessionEntry{})
		idx = int32(len(s.entries) - 1)
	}
	e := &s.entries[idx]
	e.alive, e.slot, e.req, e.path, e.bestEffort = true, slot, req, p, bestEffort
	s.bindSlot(slot, idx)
	if bestEffort {
		s.bestEffortLive++
	}
	s.live++
	return packID(idx, e.gen)
}

// enforceBudgetLambda restores λ ≤ budget after a Theorem-1-admitted
// mutation: the incremental colorer may drift above the budget even
// though the load fits, and on internal-cycle-free topologies the cold
// pipeline is guaranteed to come back under (Theorem 1: λ = π ≤
// budget). Suspended while best-effort traffic is live — the invariant
// cannot hold then — and skipped for coloring states without the budget
// hooks (deferred strategies re-solve at materialisation, where the
// strongest theorem applies anyway).
func (s *Session) enforceBudgetLambda() {
	if s.budget <= 0 || s.bestEffortLive > 0 {
		return
	}
	if bs, ok := s.coloring.(BudgetedColoringState); ok {
		bs.EnsureAtMost(s.budget)
	}
}

// Remove tears down the request with the given id, releasing its
// wavelength and load. Removing a dark entry just discards it. Freed
// capacity triggers the best-effort promotion and dark revival sweeps.
func (s *Session) Remove(id SessionID) error {
	e, err := s.lookup(id)
	if err != nil {
		return err
	}
	if e.dark {
		// Dark entries hold no coloring or load; releasing the entry is
		// the whole teardown.
		s.release(id, e)
		return nil
	}
	if err := s.coloring.Remove(e.slot); err != nil {
		return err
	}
	s.unbindSlot(e.slot)
	s.trackRemove(e.path)
	s.release(id, e)
	s.promoteBestEffort()
	s.enforceBudgetLambda()
	s.reviveDark()
	return nil
}

// release retires a live entry: the slot index is recycled under a new
// generation, so the old id stops resolving.
func (s *Session) release(id SessionID, e *sessionEntry) {
	e.alive = false
	e.gen++
	e.path = nil
	if e.dark {
		e.dark = false
		e.darkAt = 0
		s.dark--
	} else {
		s.live--
	}
	if e.bestEffort {
		e.bestEffort = false
		s.bestEffortLive--
	}
	s.freeIdx = append(s.freeIdx, int32(uint32(id)))
}

// Reroute re-routes the request with the given id against the current
// loads (excluding itself) and, when the route changes, reassigns its
// wavelength. It reports whether the path changed. Rerouting a dark
// entry is a revival attempt: true means it came back live.
func (s *Session) Reroute(id SessionID) (bool, error) {
	e, err := s.lookup(id)
	if err != nil {
		return false, err
	}
	if e.dark {
		if s.reviveOne(int32(uint32(id)), e) {
			s.enforceBudgetLambda()
			return true, nil
		}
		return false, nil
	}
	// Route against the loads without this request, as a fresh arrival
	// would see them.
	s.trackRemove(e.path)
	p, err := s.routing.Route(e.req, s.tracker)
	if err == nil && s.pathCrossesFailure(p) {
		err = route.ErrNoRoute{Req: e.req} // failure-blind strategy routed over a cut
	}
	if err != nil {
		s.trackAdd(e.path) // restore
		return false, fmt.Errorf("wdm: rerouting: %w", err)
	}
	if p.Equal(e.path) {
		s.trackAdd(e.path)
		return false, nil
	}
	// A budgeted session only switches to a route that itself passes
	// admission; otherwise the old path stands — not an error, the
	// request stays provisioned. The cycle-free precheck answers here;
	// the general-DAG probe is woven into the coloring swap below.
	budgeted := s.budget > 0 && !e.bestEffort
	if budgeted && s.cycleFree && !s.rollbackProbe && !s.tracker.FitsAdditional(p, s.budget) {
		s.trackAdd(e.path)
		return false, nil
	}
	if err := s.coloring.Remove(e.slot); err != nil {
		s.trackAdd(e.path)
		return false, err
	}
	s.unbindSlot(e.slot)
	idx := int32(uint32(id))
	var slot int
	if budgeted && (!s.cycleFree || s.rollbackProbe) {
		var ok bool
		slot, ok, err = s.colorUnderBudget(p)
		if err == nil && !ok {
			// New route over budget: keep the old path (it fit before). The
			// probe's repack may have permuted the palette, so the restore
			// re-enforces λ ≤ budget before reporting no change.
			if oldSlot, restoreErr := s.coloring.Add(e.path); restoreErr == nil {
				e.slot = oldSlot
				s.bindSlot(oldSlot, idx)
				s.trackAdd(e.path)
				s.enforceBudgetLambda()
				return false, nil
			}
			s.release(id, e)
			return false, fmt.Errorf("wdm: rerouting: %w (request %d dropped)", ErrBudgetExceeded, id)
		}
	} else {
		slot, err = s.coloring.Add(p)
	}
	if err != nil {
		// Try to restore the old path; the session must stay consistent.
		if oldSlot, restoreErr := s.coloring.Add(e.path); restoreErr == nil {
			e.slot = oldSlot
			s.bindSlot(oldSlot, idx)
			s.trackAdd(e.path)
			s.enforceBudgetLambda()
			return false, fmt.Errorf("wdm: rerouting: %w", err)
		}
		s.release(id, e)
		return false, fmt.Errorf("wdm: rerouting: %w (request %d dropped)", err, id)
	}
	s.trackAdd(p)
	e.slot, e.path = slot, p
	s.bindSlot(slot, idx)
	s.enforceBudgetLambda()
	return true, nil
}

// Path returns the current route of a live request. For a dark entry
// it returns the parked route — the last path the request held, which
// may cross the failed arc that parked it.
func (s *Session) Path(id SessionID) (*dipath.Path, error) {
	e, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	return e.path, nil
}

// Wavelength returns the current wavelength of a live request, or -1
// when the request is parked dark or the session's coloring strategy
// defers assignment (see Provisioning for the materialised answer).
func (s *Session) Wavelength(id SessionID) (int, error) {
	e, err := s.lookup(id)
	if err != nil {
		return -1, err
	}
	if e.dark {
		return -1, nil
	}
	return s.coloring.Wavelength(e.slot), nil
}

// IDs returns the lit session ids in slot order — a deterministic
// order that equals arrival order until slots are recycled by Remove.
// Provisioning and Verify materialise the live set in the same order;
// dark entries are excluded (see DarkIDs).
func (s *Session) IDs() []SessionID {
	ids := make([]SessionID, 0, s.live)
	for idx := range s.entries {
		if e := &s.entries[idx]; e.alive && !e.dark {
			ids = append(ids, packID(int32(idx), e.gen))
		}
	}
	return ids
}

// snapshot materialises the lit set in slot order (see IDs).
func (s *Session) snapshot() (slots []int, fam dipath.Family) {
	slots = make([]int, 0, s.live)
	fam = make(dipath.Family, 0, s.live)
	for idx := range s.entries {
		if e := &s.entries[idx]; e.alive && !e.dark {
			slots = append(slots, e.slot)
			fam = append(fam, e.path)
		}
	}
	return slots, fam
}

// fillSnapshotRows freezes the session's slot table into rows (sized
// to len(s.entries) by the caller) for the engine's published snapshot:
// free slots as snapFree, dark entries with their parked route and
// wavelength -1, lit entries with their current wavelength offset by
// band (the overlay lane's banding base; 0 elsewhere). Deferred
// wavelengths (-1) are never banded, matching Wavelength.
func (s *Session) fillSnapshotRows(rows []snapRow, band int) {
	for idx := range s.entries {
		e := &s.entries[idx]
		switch {
		case !e.alive:
			rows[idx] = snapRow{}
		case e.dark:
			rows[idx] = snapRow{gen: e.gen, state: snapDark, wavelength: -1, path: e.path}
		default:
			w := s.coloring.Wavelength(e.slot)
			if w >= 0 {
				w += band
			}
			rows[idx] = snapRow{gen: e.gen, state: snapLit, wavelength: int32(w), path: e.path}
		}
	}
}

// Provisioning materialises the session's current state as a
// Provisioning, with paths and wavelengths in id order (see IDs).
func (s *Session) Provisioning() (*Provisioning, error) {
	return s.provisioning(false)
}

// provisioning materialises the live set. With aliasLive, a coloring
// state whose slot table is dense (DenseFamilyState) hands its table
// over directly — zero copies, but the resulting Provisioning aliases
// live session state, so only callers that discard the session
// afterwards (one-shot Provision) may ask for it.
func (s *Session) provisioning(aliasLive bool) (*Provisioning, error) {
	var slots []int
	var fam dipath.Family
	if aliasLive {
		if ds, ok := s.coloring.(DenseFamilyState); ok {
			fam, _ = ds.DenseFamily()
		}
	}
	if fam == nil {
		slots, fam = s.snapshot()
	}
	colors, num, method, err := s.coloring.Assignment(slots, fam)
	if err != nil {
		return nil, fmt.Errorf("wdm: wavelength assignment: %w", err)
	}
	p := &Provisioning{
		Paths:       fam,
		Wavelengths: colors,
		NumLambda:   num,
		Pi:          s.tracker.Pi(),
		Method:      method,
		ADMs:        countADMs(fam, colors),
	}
	p.Feasible = s.net.Wavelengths == 0 || p.NumLambda <= s.net.Wavelengths
	return p, nil
}

// Verify checks the session's live wavelength assignment against the
// invariant: arc-sharing dipaths carry distinct wavelengths. It is the
// safety net the incremental engine is pinned to in tests.
func (s *Session) Verify() error {
	slots, fam := s.snapshot()
	colors, num, _, err := s.coloring.Assignment(slots, fam)
	if err != nil {
		return err
	}
	res := &core.Result{Colors: colors, NumColors: num, Pi: s.tracker.Pi()}
	return core.Verify(s.net.Topology, fam, res)
}

// ── Re-layout primitives (adaptive layout plane; see adaptive.go) ──────
//
// The sharded engine reshapes its lane layout online: budget re-banding
// moves wavelengths between the region band and the overlay slice,
// re-splitting carves a hot region in two, and live AddArc grows the
// topology under a running engine. All three are built from the four
// session primitives below plus growTopology — adoption moves an
// already-admitted lightpath between lane sessions without touching the
// admission counters (relocation is not a new offer), retirement drains
// a lane whose entries moved away, and growTopology re-syncs per-arc
// state after the session's graph gained arcs in place.

// adoptPath relocates an already-admitted lightpath into this session:
// p is colored under the session's budget with the same discipline as
// restoreCommit (Theorem-1 precheck on cycle-free topologies,
// color-under-limit elsewhere), and the new entry keeps the request and
// best-effort flag of the original. Best-effort entries bypass the
// budget check — they were admitted past it by the degrade strategy and
// keep that status. ok=false means the budget rejected p with the
// session untouched; the caller parks the entry dark instead (see
// adoptDark).
func (s *Session) adoptPath(req route.Request, p *dipath.Path, bestEffort bool) (SessionID, bool, error) {
	var slot int
	var err error
	switch {
	case s.budget <= 0 || bestEffort:
		if slot, err = s.coloring.Add(p); err != nil {
			return 0, false, err
		}
	case s.cycleFree && !s.rollbackProbe:
		if !s.tracker.FitsAdditional(p, s.budget) {
			return 0, false, nil
		}
		if slot, err = s.coloring.Add(p); err != nil {
			return 0, false, err
		}
	default:
		var ok bool
		slot, ok, err = s.colorUnderBudget(p)
		if err != nil || !ok {
			return 0, false, err
		}
	}
	id := s.insertEntry(req, p, slot, bestEffort)
	s.enforceBudgetLambda()
	return id, true, nil
}

// adoptDark relocates an entry into this session parked dark: the route
// is retained for later revival sweeps but holds no coloring or load —
// the same shape park leaves a storm victim in (dark entries are never
// best-effort; park drops the flag and so does dark adoption).
func (s *Session) adoptDark(req route.Request, p *dipath.Path) SessionID {
	var idx int32
	if n := len(s.freeIdx); n > 0 {
		idx = s.freeIdx[n-1]
		s.freeIdx = s.freeIdx[:n-1]
	} else {
		s.entries = append(s.entries, sessionEntry{})
		idx = int32(len(s.entries) - 1)
	}
	e := &s.entries[idx]
	s.darkSeq++
	e.alive, e.dark, e.slot, e.darkAt, e.req, e.path = true, true, -1, s.darkSeq, req, p
	s.dark++
	return packID(idx, e.gen)
}

// drainRetire empties a session whose entries relocated to other lanes
// during a re-layout: every slot stops resolving (stale lookups fail and
// are forwarded by the engine), live/dark drop to zero, but the
// cumulative admission and failure counters survive — the engine keeps
// retired lanes in its stats aggregation so no traffic history is lost.
// The coloring and tracker state is abandoned, not torn down: the
// session is never offered another request.
func (s *Session) drainRetire() {
	s.entries = s.entries[:0]
	s.freeIdx = s.freeIdx[:0]
	s.slotEntry = s.slotEntry[:0]
	s.live, s.dark, s.bestEffortLive = 0, 0, 0
}

// growTopology re-syncs the session's per-arc state after its topology
// gained arcs in place (the engine's live AddArc): the load tracker and
// the coloring state's arc incidence extend (the new arcs carry no
// load), the routing state is rebuilt from its registered strategy —
// precomputed tables may depend on the arc set, and a strategy may
// legitimately refuse the grown graph (UPP uniqueness can break) — the
// lazily built storm detour router is dropped, and the Theorem-1 gate is
// recomputed: a new arc can close an internal cycle, demoting the
// precheck to the general-DAG probe. On a routing error the session is
// unchanged except for the (harmless) tracker growth.
func (s *Session) growTopology() error {
	g := s.net.Topology
	s.tracker.GrowArcs(g.NumArcs())
	if gr, ok := s.coloring.(interface{ GrowArcs(n int) }); ok {
		gr.GrowArcs(g.NumArcs())
	}
	strat, ok := LookupRoutingStrategy(s.routingName)
	if !ok {
		return fmt.Errorf("wdm: routing strategy %q not registered", s.routingName)
	}
	rs, err := strat.NewState(g)
	if err != nil {
		return fmt.Errorf("wdm: routing setup: %w", err)
	}
	s.routing = rs
	s.stormRouter = nil
	if s.budget > 0 {
		s.cycleFree = !cycles.HasInternalCycle(g)
	}
	return nil
}

// setBudget re-bands the session's wavelength budget in place (adaptive
// banding): the caller guarantees the live assignment fits the new
// budget, and the λ ≤ budget invariant is re-enforced immediately. Only
// budgeted sessions re-band — admission machinery and the Theorem-1
// gate were configured at construction and do not change here.
func (s *Session) setBudget(w int) {
	if s.budget <= 0 || w <= 0 {
		return
	}
	s.budget = w
	s.enforceBudgetLambda()
}

// countADMs counts the add-drop multiplexers of an assignment: one ADM
// terminates lightpaths at each distinct (endpoint vertex, wavelength)
// pair, so lightpaths that chain through a node on one wavelength share
// the ADM there instead of being double-counted (the flat 2·|family|
// the earlier versions reported). Terminations are packed into int64s
// and sort-deduplicated — cheaper than a map at provisioning sizes.
func countADMs(fam dipath.Family, colors []int) int {
	terms := make([]int64, 0, 2*len(fam))
	pack := func(v digraph.Vertex, c int) int64 {
		return int64(v)<<32 | int64(uint32(c))
	}
	for i, p := range fam {
		terms = append(terms, pack(p.First(), colors[i]), pack(p.Last(), colors[i]))
	}
	slices.Sort(terms)
	count := 0
	for i, t := range terms {
		if i == 0 || t != terms[i-1] {
			count++
		}
	}
	return count
}
