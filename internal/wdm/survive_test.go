package wdm

// Survivability tests: fiber-cut storms, dark parking and revival on
// the session and the sharded engine; the best-effort re-promotion
// regression; stale-id hardening (zero mutation on unknown ids); Close
// racing ApplyBatch/FailArc; and the randomized fault-schedule churn
// acceptance run (Verify-clean, λ ≤ w, no dark entry left on a live
// in-budget route after any event).

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/route"
)

func TestSessionFailArcStormRestores(t *testing.T) {
	g, v := diamond(t)
	net := &Network{Topology: g}
	sess, err := net.NewSession(WithWavelengthBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	id, err := sess.Add(route.Request{Src: v[0], Dst: v[3]})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sess.Path(id)
	if err != nil {
		t.Fatal(err)
	}
	cut := p.Arcs()[0]
	rep, err := sess.FailArc(cut)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Affected != 1 || rep.Restored != 1 || rep.Parked != 0 {
		t.Fatalf("storm report %+v", rep)
	}
	// The storm moved the path onto the surviving branch.
	np, err := sess.Path(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range np.Arcs() {
		if g.ArcFailed(a) {
			t.Fatalf("restored route crosses the failed arc")
		}
	}
	if sess.Len() != 1 || sess.DarkLive() != 0 {
		t.Fatalf("len=%d dark=%d", sess.Len(), sess.DarkLive())
	}
	if n, err := sess.NumLambda(); err != nil || n > 1 {
		t.Fatalf("λ=%d (%v)", n, err)
	}
	if err := sess.Verify(); err != nil {
		t.Fatal(err)
	}
	// Cutting an already-failed arc is an error with no state change.
	if _, err := sess.FailArc(cut); err == nil {
		t.Fatal("double cut succeeded")
	}
}

func TestSessionFailArcParksAndRevives(t *testing.T) {
	g, v := diamond(t)
	net := &Network{Topology: g}
	sess, err := net.NewSession(WithWavelengthBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	id, err := sess.Add(route.Request{Src: v[0], Dst: v[3]})
	if err != nil {
		t.Fatal(err)
	}
	// Cut both branches: nothing to restore onto.
	if _, err := sess.FailArc(digraph.ArcID(0)); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.FailArc(digraph.ArcID(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Affected != 1 || rep.Restored != 0 || rep.Parked != 1 {
		t.Fatalf("storm report %+v", rep)
	}
	// Parked, not dropped: excluded from the live view but addressable.
	if dark, err := sess.IsDark(id); err != nil || !dark {
		t.Fatalf("IsDark = %v, %v", dark, err)
	}
	if sess.Len() != 0 || sess.DarkLive() != 1 || sess.Pi() != 0 {
		t.Fatalf("len=%d dark=%d π=%d", sess.Len(), sess.DarkLive(), sess.Pi())
	}
	if w, err := sess.Wavelength(id); err != nil || w != -1 {
		t.Fatalf("dark wavelength = %d, %v", w, err)
	}
	if ids := sess.IDs(); len(ids) != 0 {
		t.Fatalf("dark id leaked into IDs: %v", ids)
	}
	if ids := sess.DarkIDs(); len(ids) != 1 || ids[0] != id {
		t.Fatalf("DarkIDs = %v", ids)
	}
	if n, err := sess.NumLambda(); err != nil || n != 0 {
		t.Fatalf("λ=%d (%v)", n, err)
	}
	if err := sess.Verify(); err != nil {
		t.Fatal(err)
	}
	// Repairing one branch revives it oldest-first.
	revived, err := sess.RestoreArc(digraph.ArcID(0))
	if err != nil {
		t.Fatal(err)
	}
	if revived != 1 {
		t.Fatalf("revived = %d", revived)
	}
	if dark, _ := sess.IsDark(id); dark {
		t.Fatal("still dark after repair")
	}
	if sess.Len() != 1 || sess.DarkLive() != 0 {
		t.Fatalf("len=%d dark=%d", sess.Len(), sess.DarkLive())
	}
	fs := sess.FailureStats()
	if fs.Cuts != 2 || fs.Restores != 1 || fs.Parked != 1 || fs.Revived != 1 {
		t.Fatalf("failure stats %+v", fs)
	}
	if err := sess.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionRemoveDarkEntry(t *testing.T) {
	g, v := diamond(t)
	net := &Network{Topology: g}
	sess, err := net.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	id, err := sess.Add(route.Request{Src: v[0], Dst: v[3]})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.FailArc(digraph.ArcID(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.FailArc(digraph.ArcID(2)); err != nil {
		t.Fatal(err)
	}
	if sess.DarkLive() != 1 {
		t.Fatalf("dark = %d", sess.DarkLive())
	}
	// A dark entry can be torn down like any other request.
	if err := sess.Remove(id); err != nil {
		t.Fatal(err)
	}
	if sess.DarkLive() != 0 || sess.Len() != 0 {
		t.Fatalf("dark=%d len=%d after remove", sess.DarkLive(), sess.Len())
	}
	// And it is gone: the id no longer resolves.
	if err := sess.Remove(id); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("removed dark id resolves: %v", err)
	}
}

// TestPromoteBestEffortOnRemove is the re-promotion regression: a
// degrade-admitted best-effort path must upgrade to budgeted service
// when a teardown brings λ back within the budget — it used to stay
// best-effort forever.
func TestPromoteBestEffortOnRemove(t *testing.T) {
	g, v := diamond(t)
	net := &Network{Topology: g}
	sess, err := net.NewSession(
		WithWavelengthBudget(1),
		WithAdmissionStrategyName(AdmissionDegrade),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := dipath.MustFromVertices(g, v[0], v[1], v[3])
	id1, adm, err := sess.TryAddPath(p)
	if err != nil || !adm.Accepted || adm.BestEffort {
		t.Fatalf("first offer: %+v %v", adm, err)
	}
	id2, adm, err := sess.TryAddPath(p)
	if err != nil || !adm.Accepted || !adm.BestEffort {
		t.Fatalf("degraded offer: %+v %v", adm, err)
	}
	if sess.BestEffortLive() != 1 {
		t.Fatalf("BestEffortLive = %d", sess.BestEffortLive())
	}
	// Tear down the budgeted path: headroom returns, so the sweep must
	// promote the best-effort entry and restore the λ ≤ w guarantee.
	if err := sess.Remove(id1); err != nil {
		t.Fatal(err)
	}
	if sess.BestEffortLive() != 0 {
		t.Fatalf("BestEffortLive = %d after headroom returned", sess.BestEffortLive())
	}
	if be, err := sess.IsBestEffort(id2); err != nil || be {
		t.Fatalf("IsBestEffort = %v, %v", be, err)
	}
	if n, err := sess.NumLambda(); err != nil || n > 1 {
		t.Fatalf("λ=%d past budget after promotion (%v)", n, err)
	}
	if fs := sess.FailureStats(); fs.Promoted != 1 {
		t.Fatalf("Promoted = %d", fs.Promoted)
	}
	if err := sess.Verify(); err != nil {
		t.Fatal(err)
	}
}

// sessionDigest captures every observable of a session the stale-id
// hardening promises not to mutate.
func sessionDigest(t *testing.T, s *Session) string {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "len=%d pi=%d dark=%d be=%d", s.Len(), s.Pi(), s.DarkLive(), s.BestEffortLive())
	if n, err := s.NumLambda(); err == nil {
		fmt.Fprintf(&sb, " λ=%d", n)
	}
	fmt.Fprintf(&sb, " loads=%v ids=%v", s.ArcLoads(), s.IDs())
	return sb.String()
}

func TestStaleSessionIDCleanErrors(t *testing.T) {
	g, v := diamond(t)
	net := &Network{Topology: g}
	sess, err := net.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	id1, err := sess.Add(route.Request{Src: v[0], Dst: v[3]})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Add(route.Request{Src: v[0], Dst: v[3]}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Remove(id1); err != nil {
		t.Fatal(err)
	}
	// Recycle id1's slot: the new request reuses the index under a new
	// generation, so the stale id must not alias it.
	id3, err := sess.Add(route.Request{Src: v[0], Dst: v[3]})
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 {
		t.Fatalf("recycled id %d not generation-stamped", id3)
	}
	before := sessionDigest(t, sess)
	for name, call := range map[string]func() error{
		"Remove":     func() error { return sess.Remove(id1) },
		"Reroute":    func() error { _, err := sess.Reroute(id1); return err },
		"Path":       func() error { _, err := sess.Path(id1); return err },
		"Wavelength": func() error { _, err := sess.Wavelength(id1); return err },
		"IsDark":     func() error { _, err := sess.IsDark(id1); return err },
		"never-issued": func() error {
			return sess.Remove(SessionID(1 << 40)) // generation never issued
		},
	} {
		if err := call(); !errors.Is(err, ErrUnknownSession) {
			t.Fatalf("%s(stale) = %v, want ErrUnknownSession", name, err)
		}
		if after := sessionDigest(t, sess); after != before {
			t.Fatalf("%s(stale) mutated state:\n before %s\n after  %s", name, before, after)
		}
	}
	if err := sess.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestStaleShardedIDCleanErrors(t *testing.T) {
	net := multiComponentNetwork(t, 3, 91)
	eng, err := net.NewShardedEngine()
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pool := route.NewRouter(net.Topology).AllToAll()
	var ids []ShardedID
	for i := 0; i < 8; i++ {
		id, err := eng.Add(pool[i*3%len(pool)])
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	stale := ids[2]
	if err := eng.Remove(stale); err != nil {
		t.Fatal(err)
	}
	// Recycle the slot under a new generation.
	if _, err := eng.Add(pool[6]); err != nil {
		t.Fatal(err)
	}
	digest := func() string {
		n, err := eng.NumLambda()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("len=%d pi=%d dark=%d λ=%d loads=%v",
			eng.Len(), eng.Pi(), eng.DarkLive(), n, eng.ArcLoads())
	}
	before := digest()
	for name, call := range map[string]func() error{
		"Remove":  func() error { return eng.Remove(stale) },
		"Reroute": func() error { _, err := eng.Reroute(stale); return err },
		"Path":    func() error { _, err := eng.Path(stale); return err },
		"IsDark":  func() error { _, err := eng.IsDark(stale); return err },
	} {
		if err := call(); !errors.Is(err, ErrUnknownSession) {
			t.Fatalf("%s(stale) = %v, want ErrUnknownSession", name, err)
		}
		if after := digest(); after != before {
			t.Fatalf("%s(stale) mutated state:\n before %s\n after  %s", name, before, after)
		}
	}
	// Batched removes report the same sentinel per-op.
	res := eng.ApplyBatch([]BatchOp{RemoveOp(stale)})
	if len(res) != 1 || !errors.Is(res[0].Err, ErrUnknownSession) {
		t.Fatalf("batched stale remove: %+v", res)
	}
	if after := digest(); after != before {
		t.Fatalf("batched stale remove mutated state")
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineFailArcPlainComponent(t *testing.T) {
	net := multiComponentNetwork(t, 3, 77)
	eng, err := net.NewShardedEngine(WithEngineWavelengthBudget(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pool := route.NewRouter(net.Topology).AllToAll()
	var ids []ShardedID
	for i := 0; i < len(pool) && len(ids) < 24; i += 3 {
		id, err := eng.Add(pool[i])
		if err == nil {
			ids = append(ids, id)
		} else if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatal(err)
		}
	}
	// Cut the most loaded arc: its paths must restore or park, never
	// vanish, and the live assignment must stay proper and in budget.
	loads := eng.ArcLoads()
	cut, best := digraph.ArcID(0), -1
	for a, l := range loads {
		if l > best {
			cut, best = digraph.ArcID(a), l
		}
	}
	rep, err := eng.FailArc(cut)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Affected != best {
		t.Fatalf("affected %d, want %d", rep.Affected, best)
	}
	if rep.Restored+rep.Parked != rep.Affected {
		t.Fatalf("storm lost paths: %+v", rep)
	}
	if eng.Len()+eng.DarkLive() != len(ids) {
		t.Fatalf("live %d + dark %d != %d", eng.Len(), eng.DarkLive(), len(ids))
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
	if n, err := eng.NumLambda(); err != nil || n > 4 {
		t.Fatalf("λ=%d (%v)", n, err)
	}
	if eng.NumFailedArcs() != 1 {
		t.Fatalf("failed arcs = %d", eng.NumFailedArcs())
	}
	st := eng.Stats()
	if st.Cuts != 1 || st.FailedArcs != 1 || st.Plain.Affected != rep.Affected {
		t.Fatalf("engine stats %+v", st)
	}
	// Repair: every dark entry comes back (capacity allowing) and the
	// failure counters settle.
	revived, err := eng.RestoreArc(cut)
	if err != nil {
		t.Fatal(err)
	}
	if revived != rep.Parked {
		t.Fatalf("revived %d of %d parked", revived, rep.Parked)
	}
	if eng.DarkLive() != 0 || eng.Len() != len(ids) {
		t.Fatalf("dark=%d len=%d after repair", eng.DarkLive(), eng.Len())
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
	// Unknown and double-restore arcs are clean errors.
	if _, err := eng.FailArc(digraph.ArcID(-1)); err == nil {
		t.Fatal("negative arc accepted")
	}
	if _, err := eng.RestoreArc(cut); err == nil {
		t.Fatal("double restore accepted")
	}
}

// TestEngineFailArcSplitsComponent pins the incremental re-shard: a cut
// that disconnects a component's only route between two vertices must
// reject requests for that pair in O(1) at dispatch, and the repair
// must make them routable again.
func TestEngineFailArcSplitsComponent(t *testing.T) {
	// 0 -> 1 -> 2: a path component; cutting 1->2 splits it.
	g := digraph.New(3)
	g.MustAddArc(0, 1)
	bridge := g.MustAddArc(1, 2)
	net := &Network{Topology: g}
	eng, err := net.NewShardedEngine()
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.FailArc(bridge); err != nil {
		t.Fatal(err)
	}
	var nr route.ErrNoRoute
	if _, err := eng.Add(route.Request{Src: 0, Dst: 2}); !errors.As(err, &nr) {
		t.Fatalf("split-pair add: %v, want ErrNoRoute", err)
	}
	// The surviving half keeps admitting.
	if _, err := eng.Add(route.Request{Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RestoreArc(bridge); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Add(route.Request{Src: 0, Dst: 2}); err != nil {
		t.Fatalf("post-repair add: %v", err)
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoLevelEngineFailArc(t *testing.T) {
	net := giantComponentNetwork(t, 3, 811)
	eng := twoLevelEngine(t, net, WithEngineWavelengthBudget(6))
	defer eng.Close()
	pool := route.NewRouter(net.Topology).AllToAll()
	var ids []ShardedID
	for i := 0; i < len(pool) && len(ids) < 40; i += 2 {
		id, err := eng.Add(pool[i])
		if err == nil {
			ids = append(ids, id)
		} else if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatal(err)
		}
	}
	total := len(ids)
	if st := eng.Stats(); st.TwoLevel == 0 {
		t.Fatal("topology did not produce a two-level component")
	}
	// Cut every third arc, checking the reconciled two-level state after
	// each storm; then heal in reverse order.
	var cuts []digraph.ArcID
	for a := 0; a < net.Topology.NumArcs(); a += 3 {
		cuts = append(cuts, digraph.ArcID(a))
	}
	for _, a := range cuts {
		rep, err := eng.FailArc(a)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Restored+rep.Parked != rep.Affected {
			t.Fatalf("cut %d lost paths: %+v", a, rep)
		}
		if err := eng.Verify(); err != nil {
			t.Fatalf("cut %d: %v", a, err)
		}
		if n, err := eng.NumLambda(); err != nil || n > 6 {
			t.Fatalf("cut %d: λ=%d (%v)", a, n, err)
		}
	}
	if eng.Len()+eng.DarkLive() != total {
		t.Fatalf("live %d + dark %d != %d", eng.Len(), eng.DarkLive(), total)
	}
	for i := len(cuts) - 1; i >= 0; i-- {
		if _, err := eng.RestoreArc(cuts[i]); err != nil {
			t.Fatal(err)
		}
		if err := eng.Verify(); err != nil {
			t.Fatalf("restore %d: %v", cuts[i], err)
		}
	}
	if eng.NumFailedArcs() != 0 {
		t.Fatalf("failed arcs = %d after full heal", eng.NumFailedArcs())
	}
	// Nothing may be lost: every entry is live again or parked dark
	// (revival after a heal is still budget-bound — storms may have left
	// survivors on detour routes that hold the parked entry's capacity).
	if eng.Len()+eng.DarkLive() != total {
		t.Fatalf("live %d + dark %d != %d after full heal", eng.Len(), eng.DarkLive(), total)
	}
	if n, err := eng.NumLambda(); err != nil || n > 6 {
		t.Fatalf("λ=%d after heal (%v)", n, err)
	}
	// Tear down every live entry, then run the cross-lane sweep: with
	// the topology healed and the capacity freed the parked remainder
	// must all come back — dark entries are never lost.
	stillDark := eng.DarkLive()
	for _, id := range ids {
		if dark, err := eng.IsDark(id); err != nil || dark {
			continue
		}
		if err := eng.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Revive(); err != nil {
		t.Fatal(err)
	}
	if eng.DarkLive() != 0 {
		t.Fatalf("dark=%d after capacity freed (was %d)", eng.DarkLive(), stillDark)
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineCloseRacesFailArc drives concurrent batches and a fault
// injector against Close: after Close every mutation (including FailArc
// and RestoreArc) reports ErrEngineClosed and the queries keep
// answering on the frozen state. Run under -race at -cpu=1,4.
func TestEngineCloseRacesFailArc(t *testing.T) {
	net := multiComponentNetwork(t, 4, 67)
	eng, err := net.NewShardedEngine(WithShardWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	pool := route.NewRouter(net.Topology).AllToAll()

	var started, done sync.WaitGroup
	const batchers = 2
	started.Add(batchers + 1)
	done.Add(batchers + 1)
	for gi := 0; gi < batchers; gi++ {
		go func(gi int) {
			defer done.Done()
			rng := rand.New(rand.NewSource(int64(500 + gi)))
			var mine []ShardedID
			signalled := false
			nops := 2 * serialBatchThreshold
			for {
				ops := make([]BatchOp, 0, nops)
				nRemove := 0
				for k := 0; k < nops; k++ {
					if nRemove < len(mine) && rng.Intn(3) == 0 {
						ops = append(ops, RemoveOp(mine[nRemove]))
						nRemove++
					} else {
						ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
					}
				}
				mine = mine[nRemove:]
				closed := false
				for i, res := range eng.ApplyBatch(ops) {
					if errors.Is(res.Err, ErrEngineClosed) {
						closed = true
						break
					}
					var nr route.ErrNoRoute
					if errors.As(res.Err, &nr) {
						continue // a concurrent cut disconnected the pair
					}
					if errors.Is(res.Err, ErrUnknownSession) {
						continue // removed while parked by a concurrent storm
					}
					if res.Err != nil {
						t.Errorf("goroutine %d: %v", gi, res.Err)
						closed = true
						break
					}
					if ops[i].Kind == BatchAdd {
						mine = append(mine, res.ID)
					}
				}
				if !signalled {
					signalled = true
					started.Done()
				}
				if closed {
					return
				}
			}
		}(gi)
	}
	// The fault injector cycles cut/repair over a fixed arc set.
	go func() {
		defer done.Done()
		arcs := []digraph.ArcID{0, 5, 9}
		signalled := false
		for {
			closed := false
			for _, a := range arcs {
				if _, err := eng.FailArc(a); errors.Is(err, ErrEngineClosed) {
					closed = true
					break
				}
				if _, err := eng.RestoreArc(a); errors.Is(err, ErrEngineClosed) {
					closed = true
					break
				}
			}
			if !signalled {
				signalled = true
				started.Done()
			}
			if closed {
				return
			}
		}
	}()
	started.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	done.Wait()

	if _, err := eng.FailArc(digraph.ArcID(0)); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("FailArc after Close: %v", err)
	}
	if _, err := eng.RestoreArc(digraph.ArcID(0)); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("RestoreArc after Close: %v", err)
	}
	// Queries answer on the frozen state.
	eng.Pi()
	eng.Len()
	eng.DarkLive()
	eng.NumFailedArcs()
	eng.Stats()
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomFaultChurnSession is the acceptance run: 1000 randomized
// events interleaving cuts and repairs with budgeted adds and removes.
// After every event the session must be Verify-clean with λ ≤ w, and no
// entry may sit dark while its parked route is live and in budget —
// graceful degradation must re-admit as soon as it can.
func TestRandomFaultChurnSession(t *testing.T) {
	net := multiComponentNetwork(t, 2, 131)
	g := net.Topology
	const budget = 3
	sess, err := net.NewSession(WithWavelengthBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	pool := route.NewRouter(g).AllToAll()
	rng := rand.New(rand.NewSource(997))
	var ids []SessionID
	var failed []digraph.ArcID
	events := 1000
	if testing.Short() {
		events = 250
	}
	for ev := 0; ev < events; ev++ {
		switch r := rng.Intn(10); {
		case r == 0: // cut a random live arc
			a := digraph.ArcID(rng.Intn(g.NumArcs()))
			if g.ArcFailed(a) {
				continue
			}
			if _, err := sess.FailArc(a); err != nil {
				t.Fatalf("event %d: FailArc: %v", ev, err)
			}
			failed = append(failed, a)
		case r == 1 && len(failed) > 0: // repair a random cut
			k := rng.Intn(len(failed))
			a := failed[k]
			failed = append(failed[:k], failed[k+1:]...)
			if _, err := sess.RestoreArc(a); err != nil {
				t.Fatalf("event %d: RestoreArc: %v", ev, err)
			}
		case r < 7 || len(ids) == 0: // arrival
			_, adm, err := sess.TryAdd(pool[rng.Intn(len(pool))])
			if err != nil {
				var nr route.ErrNoRoute
				if errors.As(err, &nr) {
					break // disconnected by an open cut
				}
				t.Fatalf("event %d: TryAdd: %v", ev, err)
			}
			if adm.Accepted {
				// Track via IDs to include storms' effects; cheaper to
				// re-read than to mirror park/revive transitions.
			}
			ids = sess.IDs()
		default: // departure of a random live entry
			if err := sess.Remove(ids[rng.Intn(len(ids))]); err != nil {
				t.Fatalf("event %d: Remove: %v", ev, err)
			}
			ids = sess.IDs()
		}
		ids = sess.IDs()
		if err := sess.Verify(); err != nil {
			t.Fatalf("event %d: %v", ev, err)
		}
		if n, err := sess.NumLambda(); err != nil || n > budget {
			t.Fatalf("event %d: λ=%d past budget (%v)", ev, n, err)
		}
		if pi := sess.Pi(); pi > budget {
			t.Fatalf("event %d: π=%d past budget", ev, pi)
		}
		// No dark entry may have a live, in-budget parked route: the
		// revival sweeps run after every fault event and removal, so a
		// restorable entry must already be back.
		loads := sess.ArcLoads()
		for _, id := range sess.DarkIDs() {
			p, err := sess.Path(id)
			if err != nil {
				t.Fatalf("event %d: dark path: %v", ev, err)
			}
			restorable := true
			for _, a := range p.Arcs() {
				if g.ArcFailed(a) || loads[a]+1 > budget {
					restorable = false
					break
				}
			}
			if restorable {
				t.Fatalf("event %d: dark entry %d parked on a live in-budget route", ev, id)
			}
		}
	}
	// Full heal: every dark entry must eventually revive or be blocked
	// purely by the budget, and the final state must verify clean.
	for _, a := range failed {
		if _, err := sess.RestoreArc(a); err != nil {
			t.Fatal(err)
		}
	}
	sess.Revive()
	if err := sess.Verify(); err != nil {
		t.Fatal(err)
	}
	if n, err := sess.NumLambda(); err != nil || n > budget {
		t.Fatalf("λ=%d after heal (%v)", n, err)
	}
	fs := sess.FailureStats()
	if fs.Cuts == 0 || fs.Affected == 0 {
		t.Fatalf("trace never stressed the storm path: %+v", fs)
	}
}

// TestRandomFaultChurnEngine runs the same acceptance shape through the
// sharded engine with batched churn: Verify-clean and λ ≤ w after every
// batch and fault event, nothing lost across parks and revivals.
func TestRandomFaultChurnEngine(t *testing.T) {
	net := multiComponentNetwork(t, 3, 313)
	g := net.Topology
	const budget = 4
	eng, err := net.NewShardedEngine(WithEngineWavelengthBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pool := route.NewRouter(g).AllToAll()
	rng := rand.New(rand.NewSource(733))
	var ids []ShardedID
	var failed []digraph.ArcID
	rounds := 120
	if testing.Short() {
		rounds = 30
	}
	for round := 0; round < rounds; round++ {
		switch r := rng.Intn(6); {
		case r == 0:
			a := digraph.ArcID(rng.Intn(g.NumArcs()))
			if g.ArcFailed(a) {
				continue
			}
			if _, err := eng.FailArc(a); err != nil {
				t.Fatalf("round %d: FailArc: %v", round, err)
			}
			failed = append(failed, a)
		case r == 1 && len(failed) > 0:
			k := rng.Intn(len(failed))
			a := failed[k]
			failed = append(failed[:k], failed[k+1:]...)
			if _, err := eng.RestoreArc(a); err != nil {
				t.Fatalf("round %d: RestoreArc: %v", round, err)
			}
		default:
			ops := make([]BatchOp, 0, 8)
			nRemove := 0
			for k := 0; k < 8; k++ {
				if nRemove < len(ids) && rng.Intn(3) == 0 {
					ops = append(ops, RemoveOp(ids[nRemove]))
					nRemove++
				} else {
					ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
				}
			}
			ids = ids[nRemove:]
			for i, res := range eng.ApplyBatch(ops) {
				var nr route.ErrNoRoute
				switch {
				case res.Err == nil:
					if ops[i].Kind == BatchAdd {
						ids = append(ids, res.ID)
					}
				case errors.Is(res.Err, ErrBudgetExceeded):
				case errors.As(res.Err, &nr):
				case errors.Is(res.Err, ErrUnknownSession):
					// the entry was torn down while parked dark
				default:
					t.Fatalf("round %d: %v", round, res.Err)
				}
			}
		}
		if err := eng.Verify(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if n, err := eng.NumLambda(); err != nil || n > budget {
			t.Fatalf("round %d: λ=%d past budget (%v)", round, n, err)
		}
	}
	for _, a := range failed {
		if _, err := eng.RestoreArc(a); err != nil {
			t.Fatal(err)
		}
	}
	if eng.NumFailedArcs() != 0 {
		t.Fatalf("failed arcs = %d after heal", eng.NumFailedArcs())
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
	if n, err := eng.NumLambda(); err != nil || n > budget {
		t.Fatalf("λ=%d after heal (%v)", n, err)
	}
	if st := eng.Stats(); st.Cuts == 0 {
		t.Fatalf("trace never cut anything: %+v", st)
	}
}
