package wdm

import (
	"errors"
	"sync"
	"testing"

	"wavedag/internal/route"
)

// TestEngineCloseIdempotent pins the Close contract the serving
// front-end's graceful drain relies on: Close returns nil however many
// times it is called (sequentially or concurrently), mutations after
// Close are definitively rejected with ErrEngineClosed, and the whole
// query plane keeps answering from the final published snapshot.
func TestEngineCloseIdempotent(t *testing.T) {
	net := multiComponentNetwork(t, 3, 131)
	eng, err := net.NewShardedEngine()
	if err != nil {
		t.Fatal(err)
	}
	pool := route.NewRouter(net.Topology).AllToAll()
	var ids []ShardedID
	for i := 0; i < 6; i++ {
		id, err := eng.Add(pool[i%len(pool)])
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	liveBefore, piBefore := eng.Len(), eng.Pi()

	if err := eng.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := eng.Close(); err != nil {
				t.Errorf("concurrent close: %v", err)
			}
		}()
	}
	wg.Wait()

	// Mutations are definitively rejected...
	if _, err := eng.Add(pool[0]); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Add post-close: %v", err)
	}
	if err := eng.Remove(ids[0]); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Remove post-close: %v", err)
	}
	if _, err := eng.FailArc(0); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("FailArc post-close: %v", err)
	}
	ops := []BatchOp{AddOp(pool[0]), RemoveOp(ids[1])}
	for i, res := range eng.ApplyBatchInto(ops, nil) {
		if !errors.Is(res.Err, ErrEngineClosed) {
			t.Fatalf("batch op %d post-close: %v", i, res.Err)
		}
	}
	// ...and none of the rejections touched state: the query plane
	// still answers the pre-close values from the final snapshot.
	if got := eng.Len(); got != liveBefore {
		t.Fatalf("Len post-close = %d, want %d", got, liveBefore)
	}
	if got := eng.Pi(); got != piBefore {
		t.Fatalf("Pi post-close = %d, want %d", got, piBefore)
	}
	for _, id := range ids {
		if _, err := eng.Path(id); err != nil {
			t.Fatalf("Path(%v) post-close: %v", id, err)
		}
	}
	if err := eng.Verify(); err != nil {
		t.Fatalf("Verify post-close: %v", err)
	}
}

// TestEngineCloseRacesBatches hammers Close against in-flight batches
// from many goroutines: every batch op must resolve definitively
// (applied or ErrEngineClosed, never a hang or partial silence), and
// once everything settles the engine must be cleanly closed with a
// consistent final snapshot.
func TestEngineCloseRacesBatches(t *testing.T) {
	net := multiComponentNetwork(t, 2, 137)
	eng, err := net.NewShardedEngine()
	if err != nil {
		t.Fatal(err)
	}
	pool := route.NewRouter(net.Topology).AllToAll()

	const writers = 4
	var wg sync.WaitGroup
	applied := make([]int, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ops := make([]BatchOp, 0, 4)
			var results []BatchResult
			for i := 0; i < 50; i++ {
				ops = ops[:0]
				for j := 0; j < 4; j++ {
					ops = append(ops, AddOp(pool[(w*50+i*4+j)%len(pool)]))
				}
				results = eng.ApplyBatchInto(ops, results)
				for _, res := range results {
					switch {
					case res.Err == nil:
						applied[w]++
					case errors.Is(res.Err, ErrEngineClosed):
					default:
						t.Errorf("writer %d: %v", w, res.Err)
					}
				}
			}
		}(w)
	}
	wg.Add(2)
	for c := 0; c < 2; c++ {
		go func() {
			defer wg.Done()
			if err := eng.Close(); err != nil {
				t.Errorf("racing close: %v", err)
			}
		}()
	}
	wg.Wait()

	total := 0
	for _, n := range applied {
		total += n
	}
	if got := eng.Len(); got != total {
		t.Fatalf("final snapshot live = %d, want %d applied adds", got, total)
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close after race: %v", err)
	}
}
