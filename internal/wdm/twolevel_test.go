package wdm

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"wavedag/internal/core"
	"wavedag/internal/digraph"
	"wavedag/internal/gen"
	"wavedag/internal/route"
)

// giantComponentNetwork glues several Theorem 1 DAGs into one weakly
// connected component: the layout component sharding cannot split, and
// the reason the two-level engine exists.
func giantComponentNetwork(t testing.TB, parts int, seed int64) *Network {
	t.Helper()
	gs := make([]*digraph.Digraph, parts)
	for i := range gs {
		g, err := gen.RandomNoInternalCycleDAG(14, 3, 3, 0.25, seed+int64(i))
		if err != nil {
			t.Fatal(err)
		}
		gs[i] = g
	}
	g, _, err := gen.GlueChain(gs...)
	if err != nil {
		t.Fatal(err)
	}
	return &Network{Topology: g}
}

// twoLevelEngine opens a two-level engine on net and fails the test if
// the topology did not actually sub-shard.
func twoLevelEngine(t testing.TB, net *Network, opts ...ShardedOption) *ShardedEngine {
	t.Helper()
	eng, err := net.NewShardedEngine(append([]ShardedOption{WithSubshardThreshold(8)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.TwoLevel == 0 || st.RegionShards < 2 {
		t.Fatalf("fixture did not sub-shard: %+v", st)
	}
	return eng
}

// TestTwoLevelEquivalence pins the two-level engine to a single Session
// fed the same events in the engine's effective order (region-lane ops,
// then overlay-lane ops, per batch — the documented batch-boundary
// reconciliation semantics): routes must be exactly equal for every
// live request (region-confined and overlay alike), π exactly equal,
// λ within slack plus the overlay band, and the engine Verify-clean
// after every batch.
func TestTwoLevelEquivalence(t *testing.T) {
	for _, policy := range []RoutingPolicy{RouteShortest, RouteMinLoad} {
		t.Run(policy.String(), func(t *testing.T) {
			net := giantComponentNetwork(t, 5, 211)
			const slack = 2
			single, err := net.NewSession(WithRoutingPolicy(policy), WithSlack(slack))
			if err != nil {
				t.Fatal(err)
			}
			eng := twoLevelEngine(t, net,
				WithShardWorkers(4),
				WithShardSessionOptions(WithRoutingPolicy(policy), WithSlack(slack)),
			)
			defer eng.Close()
			overlayIdx := int32(eng.NumShards() - 1) // single component: overlay lane is last

			pool := route.NewRouter(net.Topology).AllToAll()
			rng := rand.New(rand.NewSource(19))

			type pairID struct {
				sid SessionID
				eid ShardedID
			}
			live := map[int]pairID{} // op key -> ids
			var liveKeys []int
			nextKey := 0
			sawRegion, sawOverlay := false, false

			batches := 50
			if testing.Short() {
				batches = 12
			}
			for batch := 0; batch < batches; batch++ {
				// Both regimes: batches below serialBatchThreshold run
				// inline, larger ones exercise the pooled fan-out.
				nops := 1 + rng.Intn(2*serialBatchThreshold)
				ops := make([]BatchOp, 0, nops)
				keys := make([]int, 0, nops)
				removed := map[int]bool{}
				for k := 0; k < nops; k++ {
					if len(liveKeys) == 0 || len(removed) >= len(liveKeys) || (rng.Intn(3) != 0 && len(liveKeys) < 70) {
						ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
						keys = append(keys, nextKey)
						nextKey++
					} else {
						j := rng.Intn(len(liveKeys))
						for removed[liveKeys[j]] {
							j = (j + 1) % len(liveKeys)
						}
						key := liveKeys[j]
						removed[key] = true
						ops = append(ops, RemoveOp(live[key].eid))
						keys = append(keys, key)
					}
				}
				results := eng.ApplyBatch(ops)
				for k, res := range results {
					if res.Err != nil {
						t.Fatalf("batch %d op %d: %v", batch, k, res.Err)
					}
				}
				// Replay on the single session in the engine's effective
				// order: phase-1 (region) ops in input order, then the
				// overlay lane's ops in input order.
				for phase := 0; phase < 2; phase++ {
					for k, op := range ops {
						var shard int32
						if op.Kind == BatchAdd {
							shard = results[k].ID.Shard
						} else {
							shard = op.ID.Shard
						}
						overlay := shard == overlayIdx
						if (phase == 1) != overlay {
							continue
						}
						if overlay {
							sawOverlay = true
						} else {
							sawRegion = true
						}
						switch op.Kind {
						case BatchAdd:
							sid, err := single.Add(op.Req)
							if err != nil {
								t.Fatalf("batch %d: single Add: %v", batch, err)
							}
							live[keys[k]] = pairID{sid, results[k].ID}
							liveKeys = append(liveKeys, keys[k])
						case BatchRemove:
							if err := single.Remove(live[keys[k]].sid); err != nil {
								t.Fatalf("batch %d: single Remove: %v", batch, err)
							}
							delete(live, keys[k])
						}
					}
				}
				compact := liveKeys[:0]
				for _, key := range liveKeys {
					if _, ok := live[key]; ok {
						compact = append(compact, key)
					}
				}
				liveKeys = compact

				if got, want := eng.Len(), single.Len(); got != want {
					t.Fatalf("batch %d: Len = %d, want %d", batch, got, want)
				}
				if got, want := eng.Pi(), single.Pi(); got != want {
					t.Fatalf("batch %d: π = %d, want %d", batch, got, want)
				}
				en, err := eng.NumLambda()
				if err != nil {
					t.Fatal(err)
				}
				sn, err := single.NumLambda()
				if err != nil {
					t.Fatal(err)
				}
				on, err := eng.OverlayLambda()
				if err != nil {
					t.Fatal(err)
				}
				if en < sn-slack || en > sn+slack+on {
					t.Fatalf("batch %d: engine λ = %d vs single λ = %d (overlay band %d), outside slack %d",
						batch, en, sn, on, slack)
				}
				if err := eng.Verify(); err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				// Route equality probes: both lanes must match the single
				// session exactly (the effective-order replay makes even
				// min-load routes identical).
				for probes := 0; probes < 6 && len(liveKeys) > 0; probes++ {
					key := liveKeys[rng.Intn(len(liveKeys))]
					ep, err := eng.Path(live[key].eid)
					if err != nil {
						t.Fatal(err)
					}
					sp, err := single.Path(live[key].sid)
					if err != nil {
						t.Fatal(err)
					}
					if !ep.Equal(sp) {
						t.Fatalf("batch %d: routes diverge for key %d: %v vs %v", batch, key, ep, sp)
					}
				}
			}
			if !sawRegion || !sawOverlay {
				t.Fatalf("workload did not exercise both lanes (region=%v overlay=%v)", sawRegion, sawOverlay)
			}

			// Merged provisioning: one entry per live request, proper over
			// the global topology despite the banded per-lane colorings.
			prov, err := eng.Provisioning()
			if err != nil {
				t.Fatal(err)
			}
			if len(prov.Paths) != eng.Len() {
				t.Fatalf("merged provisioning has %d paths for %d live requests",
					len(prov.Paths), eng.Len())
			}
			if prov.Pi != eng.Pi() {
				t.Fatalf("merged π = %d, want %d", prov.Pi, eng.Pi())
			}
			res := &core.Result{Colors: prov.Wavelengths, NumColors: prov.NumLambda, Pi: prov.Pi}
			if err := core.Verify(net.Topology, prov.Paths, res); err != nil {
				t.Fatalf("merged provisioning not proper: %v", err)
			}
		})
	}
}

// TestTwoLevelDeterminism runs one op stream (with overlay traffic)
// through engines with 1 and 4 workers: the merged output must be
// identical — worker scheduling must not leak into results.
func TestTwoLevelDeterminism(t *testing.T) {
	net := giantComponentNetwork(t, 4, 307)
	pool := route.NewRouter(net.Topology).AllToAll()

	run := func(workers int) *Provisioning {
		eng := twoLevelEngine(t, net, WithShardWorkers(workers))
		defer eng.Close()
		rng := rand.New(rand.NewSource(8))
		var ops []BatchOp
		for k := 0; k < 180; k++ {
			ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
		}
		var evens []ShardedID
		for i, res := range eng.ApplyBatch(ops) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if i%2 == 0 {
				evens = append(evens, res.ID)
			}
		}
		rem := make([]BatchOp, len(evens))
		for i, id := range evens {
			rem[i] = RemoveOp(id)
		}
		for _, res := range eng.ApplyBatch(rem) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
		prov, err := eng.Provisioning()
		if err != nil {
			t.Fatal(err)
		}
		return prov
	}

	p1, p4 := run(1), run(4)
	if p1.NumLambda != p4.NumLambda || p1.Pi != p4.Pi || p1.ADMs != p4.ADMs {
		t.Fatalf("aggregates diverge across worker counts: λ %d/%d π %d/%d ADMs %d/%d",
			p1.NumLambda, p4.NumLambda, p1.Pi, p4.Pi, p1.ADMs, p4.ADMs)
	}
	if len(p1.Paths) != len(p4.Paths) {
		t.Fatalf("path counts diverge: %d vs %d", len(p1.Paths), len(p4.Paths))
	}
	for i := range p1.Paths {
		if !p1.Paths[i].Equal(p4.Paths[i]) || p1.Wavelengths[i] != p4.Wavelengths[i] {
			t.Fatalf("entry %d diverges across worker counts", i)
		}
	}
}

// TestTwoLevelReroute churns reroutes through both lanes and
// cross-checks the reconciled trackers against an independent recount
// of the live routes.
func TestTwoLevelReroute(t *testing.T) {
	net := giantComponentNetwork(t, 4, 401)
	eng := twoLevelEngine(t, net,
		WithShardWorkers(4),
		WithShardSessionOptions(WithRoutingPolicy(RouteMinLoad)),
	)
	defer eng.Close()
	pool := route.NewRouter(net.Topology).AllToAll()
	rng := rand.New(rand.NewSource(17))

	var ids []ShardedID
	for k := 0; k < 120; k++ {
		id, err := eng.Add(pool[rng.Intn(len(pool))])
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for round := 0; round < 3; round++ {
		ops := make([]BatchOp, 0, len(ids))
		for _, id := range ids {
			ops = append(ops, RerouteOp(id))
		}
		for _, res := range eng.ApplyBatch(ops) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
		if err := eng.Verify(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Independent load recount from the public per-request routes.
		loads := make([]int, net.Topology.NumArcs())
		pi := 0
		for _, id := range ids {
			p, err := eng.Path(id)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range p.Arcs() {
				loads[a]++
				if loads[a] > pi {
					pi = loads[a]
				}
			}
		}
		got := eng.ArcLoads()
		for a := range loads {
			if got[a] != loads[a] {
				t.Fatalf("round %d: arc %d load %d, want %d (reconciliation drift)",
					round, a, got[a], loads[a])
			}
		}
		if eng.Pi() != pi {
			t.Fatalf("round %d: π = %d, want %d", round, eng.Pi(), pi)
		}
	}
}

// TestTwoLevelDispatch pins lane selection and the O(1) rejections on a
// mixed topology (one giant two-level component plus a small plain one).
func TestTwoLevelDispatch(t *testing.T) {
	giant := giantComponentNetwork(t, 3, 503)
	small, err := gen.RandomNoInternalCycleDAG(4, 1, 1, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := gen.DisjointUnion(gen.Instance{G: giant.Topology}, gen.Instance{G: small})
	net := &Network{Topology: topo}
	eng := twoLevelEngine(t, net)
	defer eng.Close()

	st := eng.Stats()
	if st.Components != 2 || st.TwoLevel != 1 {
		t.Fatalf("layout: %+v, want 2 components with 1 two-level", st)
	}
	regions := giant.Topology.PartitionRegions()
	pool := route.NewRouter(topo).AllToAll()
	giantN := giant.Topology.NumVertices()
	overlayIdx := int32(st.RegionShards) // shards: regions 0..R-1, overlay R, plain R+1
	sawRegion, sawOverlay := false, false
	for _, req := range pool {
		if int(req.Src) >= giantN || int(req.Dst) >= giantN {
			continue // plain-component traffic
		}
		id, err := eng.Add(req) // giant component: vertex ids coincide with component-local ids
		if err != nil {
			t.Fatal(err)
		}
		_, _, _, confined := regions.CommonRegion(req.Src, req.Dst)
		if confined && id.Shard >= overlayIdx {
			t.Fatalf("co-region request %v landed in shard %d", req, id.Shard)
		}
		if !confined && id.Shard != overlayIdx {
			t.Fatalf("cross-region request %v landed in shard %d, want overlay %d", req, id.Shard, overlayIdx)
		}
		if confined {
			sawRegion = true
		} else {
			sawOverlay = true
		}
	}
	if !sawRegion || !sawOverlay {
		t.Fatalf("pool exercised region=%v overlay=%v", sawRegion, sawOverlay)
	}
	// Cross-component rejection stays O(1) ErrNoRoute.
	var noRoute route.ErrNoRoute
	_, err = eng.Add(route.Request{Src: 0, Dst: digraph.Vertex(topo.NumVertices() - 1)})
	if !errors.As(err, &noRoute) {
		t.Fatalf("cross-component Add: got %v, want ErrNoRoute", err)
	}
}

// TestShardedIDMisuse feeds stale, generation-recycled, foreign-engine
// and unknown-shard ids through every mutating entry point and asserts
// clean per-op errors with the engine state untouched.
func TestShardedIDMisuse(t *testing.T) {
	net := giantComponentNetwork(t, 3, 601)
	eng := twoLevelEngine(t, net, WithShardWorkers(2))
	defer eng.Close()
	pool := route.NewRouter(net.Topology).AllToAll()
	rng := rand.New(rand.NewSource(23))

	var ids []ShardedID
	var reqs []route.Request
	for k := 0; k < 8; k++ {
		req := pool[rng.Intn(len(pool))]
		id, err := eng.Add(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		reqs = append(reqs, req)
	}

	// A foreign engine over the same topology, loaded far past this
	// engine's slot tables, so its high-slot ids cannot resolve here.
	foreign := twoLevelEngine(t, net, WithShardWorkers(1))
	defer foreign.Close()
	var foreignID ShardedID
	for k := 0; k < 64; k++ {
		id, err := foreign.Add(pool[rng.Intn(len(pool))])
		if err != nil {
			t.Fatal(err)
		}
		foreignID = id
	}

	// Stale: removed id. Recycled: the slot is reused under a new
	// generation by the next add on the same lane.
	stale := ids[0]
	if err := eng.Remove(stale); err != nil {
		t.Fatal(err)
	}
	ids = ids[1:]

	digest := func() (int, int, int, *Provisioning) {
		n, err := eng.NumLambda()
		if err != nil {
			t.Fatal(err)
		}
		prov, err := eng.Provisioning()
		if err != nil {
			t.Fatal(err)
		}
		return eng.Len(), eng.Pi(), n, prov
	}
	wantLen, wantPi, wantLambda, wantProv := digest()

	misuse := []struct {
		name string
		id   ShardedID
	}{
		{"stale-removed", stale},
		{"unknown-shard", ShardedID{Shard: int32(eng.NumShards() + 7), ID: stale.ID}},
		{"negative-shard", ShardedID{Shard: -1}},
		{"high-slot", ShardedID{Shard: ids[0].Shard, ID: SessionID(1 << 20)}},
		{"foreign-engine", foreignID},
		{"wrong-shard", ShardedID{Shard: (foreignID.Shard + 1) % int32(eng.NumShards()), ID: foreignID.ID}},
	}
	for _, m := range misuse {
		t.Run(m.name, func(t *testing.T) {
			if err := eng.Remove(m.id); err == nil {
				t.Fatal("Remove accepted a misused id")
			}
			if _, err := eng.Reroute(m.id); err == nil {
				t.Fatal("Reroute accepted a misused id")
			}
			results := eng.ApplyBatch([]BatchOp{RemoveOp(m.id), RerouteOp(m.id)})
			for i, res := range results {
				if res.Err == nil {
					t.Fatalf("batch op %d accepted a misused id", i)
				}
			}
			gotLen, gotPi, gotLambda, gotProv := digest()
			if gotLen != wantLen || gotPi != wantPi || gotLambda != wantLambda {
				t.Fatalf("aggregates moved: len %d→%d π %d→%d λ %d→%d",
					wantLen, gotLen, wantPi, gotPi, wantLambda, gotLambda)
			}
			if len(gotProv.Paths) != len(wantProv.Paths) {
				t.Fatalf("provisioning size moved: %d → %d", len(wantProv.Paths), len(gotProv.Paths))
			}
			for i := range wantProv.Paths {
				if !gotProv.Paths[i].Equal(wantProv.Paths[i]) || gotProv.Wavelengths[i] != wantProv.Wavelengths[i] {
					t.Fatalf("provisioning entry %d moved", i)
				}
			}
		})
	}

	// A batch mixing good and misused ops fails only the bad ones.
	results := eng.ApplyBatch([]BatchOp{
		AddOp(pool[0]),
		RemoveOp(stale),
	})
	if results[0].Err != nil {
		t.Fatalf("good op failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("misused op succeeded")
	}

	// Generation recycling: a slot freed by Remove and re-issued must
	// invalidate the old id even though the slot index matches.
	victim := ids[len(ids)-1]
	victimReq := reqs[len(reqs)-1] // re-adding it targets the victim's lane
	if err := eng.Remove(victim); err != nil {
		t.Fatal(err)
	}
	recycled := ShardedID{Shard: -1}
	for k := 0; k < 64; k++ {
		id, err := eng.Add(victimReq)
		if err != nil {
			t.Fatal(err)
		}
		if id.Shard == victim.Shard && uint32(id.ID) == uint32(victim.ID) {
			recycled = id
			break
		}
	}
	if recycled.Shard < 0 {
		t.Fatal("freed slot was not recycled within the probe budget")
	}
	if recycled.ID == victim.ID {
		t.Fatal("recycled slot re-issued the same generation")
	}
	if err := eng.Remove(victim); err == nil {
		t.Fatal("generation-recycled id still resolves")
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineClose checks the pool lifecycle: Close during in-flight
// batches is safe (exercised under -race -cpu=1,4 in CI), mutations
// after Close fail with ErrEngineClosed, queries keep answering, and
// Close is idempotent.
func TestEngineClose(t *testing.T) {
	net := giantComponentNetwork(t, 3, 701)
	eng := twoLevelEngine(t, net, WithShardWorkers(4))
	pool := route.NewRouter(net.Topology).AllToAll()

	const goroutines = 3
	var started, done sync.WaitGroup
	started.Add(goroutines)
	done.Add(goroutines)
	for gi := 0; gi < goroutines; gi++ {
		go func(gi int) {
			defer done.Done()
			rng := rand.New(rand.NewSource(int64(100 + gi)))
			var mine []ShardedID
			signalled := false
			// Batches larger than serialBatchThreshold, so Close races
			// against the pooled fan-out, not just the inline path.
			nops := 2 * serialBatchThreshold
			for {
				ops := make([]BatchOp, 0, nops)
				nRemove := 0
				for k := 0; k < nops; k++ {
					if nRemove < len(mine) && rng.Intn(3) == 0 {
						ops = append(ops, RemoveOp(mine[nRemove]))
						nRemove++
					} else {
						ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
					}
				}
				mine = mine[nRemove:]
				closed := false
				for i, res := range eng.ApplyBatch(ops) {
					if errors.Is(res.Err, ErrEngineClosed) {
						closed = true
						break
					}
					if res.Err != nil {
						t.Errorf("goroutine %d: %v", gi, res.Err)
						closed = true
						break
					}
					if ops[i].Kind == BatchAdd {
						mine = append(mine, res.ID)
					}
				}
				if !signalled {
					signalled = true
					started.Done() // at least one batch ran before Close
				}
				if closed {
					return
				}
			}
		}(gi)
	}
	started.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	done.Wait()

	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := eng.Add(pool[0]); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Add after Close: %v, want ErrEngineClosed", err)
	}
	if err := eng.Remove(ShardedID{}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Remove after Close: %v, want ErrEngineClosed", err)
	}
	if _, err := eng.Reroute(ShardedID{}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Reroute after Close: %v, want ErrEngineClosed", err)
	}
	for _, res := range eng.ApplyBatch([]BatchOp{AddOp(pool[0])}) {
		if !errors.Is(res.Err, ErrEngineClosed) {
			t.Fatalf("ApplyBatch after Close: %v, want ErrEngineClosed", res.Err)
		}
	}
	// Queries still answer on the frozen state.
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.NumLambda(); err != nil {
		t.Fatal(err)
	}
	prov, err := eng.Provisioning()
	if err != nil {
		t.Fatal(err)
	}
	if len(prov.Paths) != eng.Len() {
		t.Fatalf("frozen provisioning has %d paths for %d live requests", len(prov.Paths), eng.Len())
	}
}
