package wdm

import (
	"fmt"
	"time"

	"wavedag/internal/digraph"
)

// This file is the engine half of the survivability layer: fiber cuts
// dispatched to the owning shard, restoration storms sequenced through
// the two-level reconciliation, incremental re-sharding of split
// components via live labels, and the failure counters Stats reports.

// Revive runs a re-admission sweep outside any failure event: dark
// entries are retried oldest-first and best-effort traffic re-promoted,
// exactly as after RestoreArc. It returns how many entries came back.
func (s *Session) Revive() int {
	revived := s.reviveDark()
	s.promoteBestEffort()
	return revived
}

// FailArc cuts an arc of the engine topology and runs the restoration
// storm on the owning component. Plain components storm on their single
// session; a two-level component storms the owning region lane first,
// folds its deltas into the overlay tracker, storms the overlay lane
// (whose paths may also cross the arc), scatters the overlay deltas
// back, and gives region dark entries a cross-lane revival chance. The
// component's live labels are refreshed, so requests a split made
// unroutable are rejected in O(1) at dispatch. Cutting an unknown or
// already-cut arc is an error with no state change; after Close it
// returns ErrEngineClosed.
func (e *ShardedEngine) FailArc(a digraph.ArcID) (StormReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return StormReport{}, ErrEngineClosed
	}
	g := e.net.Topology
	if a < 0 || int(a) >= g.NumArcs() {
		return StormReport{}, fmt.Errorf("wdm: arc %d out of range [0,%d)", a, g.NumArcs())
	}
	if err := g.FailArc(a); err != nil {
		return StormReport{}, err
	}
	start := time.Now()
	c := e.comps[e.arcComp[a]]
	ca := e.arcLoc[a]
	// The topology mutated above, so every return path from here on —
	// including a storm that errors out mid-way — must refresh the live
	// labels, account the cut, and publish: a lock-free reader must
	// never observe the cut arc without a matching snapshot. A storm can
	// reroute, park or revive entries in any of the component's lanes;
	// mark them all for a table rebuild.
	defer func() {
		c.refreshLiveLabel()
		e.cuts++
		e.stormNanos += time.Since(start).Nanoseconds()
		c.markAllDirty()
		e.publishLocked()
	}()
	var rep StormReport
	if !c.twoLevel() {
		r, err := c.plain.sess.FailArc(ca)
		if err != nil {
			return StormReport{}, fmt.Errorf("wdm: component %d: %w", c.idx, err)
		}
		rep = r
	} else {
		var rrep StormReport
		if ri := c.regions.ArcRegion[ca]; ri >= 0 {
			rs := c.regionShards[ri]
			r, err := rs.sess.FailArc(c.regions.LocalArc[ca])
			if err != nil {
				return StormReport{}, fmt.Errorf("wdm: component %d region: %w", c.idx, err)
			}
			rrep = r
		}
		// Overlay-owned arcs (ri < 0: capacity adds that bridge regions)
		// storm only the overlay lane — no region session knows them.
		c.foldRegionDeltas()
		orep, err := c.overlay.sess.FailArc(ca)
		if err != nil {
			return StormReport{}, fmt.Errorf("wdm: component %d overlay: %w", c.idx, err)
		}
		c.scatterOverlayDeltas()
		c.crossLaneRevive()
		rep = StormReport{
			Affected: rrep.Affected + orep.Affected,
			Restored: rrep.Restored + orep.Restored,
			Parked:   rrep.Parked + orep.Parked,
			Retries:  rrep.Retries + orep.Retries,
		}
	}
	return rep, nil
}

// RestoreArc repairs a cut arc and runs the re-admission sweeps on the
// owning component's lanes (region first, overlay after the fold, with
// a cross-lane revival chance at the end), then refreshes the live
// labels. It returns how many dark entries revived. Restoring an
// unknown or uncut arc is an error with no state change; after Close it
// returns ErrEngineClosed.
func (e *ShardedEngine) RestoreArc(a digraph.ArcID) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, ErrEngineClosed
	}
	g := e.net.Topology
	if a < 0 || int(a) >= g.NumArcs() {
		return 0, fmt.Errorf("wdm: arc %d out of range [0,%d)", a, g.NumArcs())
	}
	if err := g.RestoreArc(a); err != nil {
		return 0, err
	}
	c := e.comps[e.arcComp[a]]
	ca := e.arcLoc[a]
	// As in FailArc: the topology mutated, so every return path must
	// refresh the labels, account the repair, and publish.
	defer func() {
		c.refreshLiveLabel()
		e.restores++
		c.markAllDirty()
		e.publishLocked()
	}()
	revived := 0
	if !c.twoLevel() {
		n, err := c.plain.sess.RestoreArc(ca)
		if err != nil {
			return 0, fmt.Errorf("wdm: component %d: %w", c.idx, err)
		}
		revived = n
	} else {
		n1 := 0
		if ri := c.regions.ArcRegion[ca]; ri >= 0 {
			rs := c.regionShards[ri]
			n, err := rs.sess.RestoreArc(c.regions.LocalArc[ca])
			if err != nil {
				return 0, fmt.Errorf("wdm: component %d region: %w", c.idx, err)
			}
			n1 = n
		}
		c.foldRegionDeltas()
		n2, err := c.overlay.sess.RestoreArc(ca)
		if err != nil {
			return 0, fmt.Errorf("wdm: component %d overlay: %w", c.idx, err)
		}
		c.scatterOverlayDeltas()
		revived = n1 + n2 + c.crossLaneRevive()
	}
	return revived, nil
}

// Revive runs the re-admission sweep across every lane on demand:
// removals already revive within their own lane, but capacity freed in
// one lane of a two-level component can unblock dark entries of
// another, and only failure events sweep across lanes — this is the
// explicit trigger. It returns how many entries came back; after Close
// it returns ErrEngineClosed.
func (e *ShardedEngine) Revive() (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, ErrEngineClosed
	}
	revived := 0
	for _, c := range e.comps {
		if c.dead {
			continue
		}
		if !c.twoLevel() {
			revived += c.plain.sess.Revive()
			continue
		}
		n := c.crossLaneRevive()
		n2 := c.overlay.sess.Revive()
		c.scatterOverlayDeltas()
		revived += n + n2
	}
	for _, c := range e.comps {
		c.markAllDirty() // revival sweeps may touch any lane
	}
	e.publishLocked()
	return revived, nil
}

// crossLaneRevive gives a two-level component's region dark entries a
// revival chance after the overlay lane mutated: overlay parks or
// teardowns free capacity the region sweeps could not see when they
// last ran. Revived paths' deltas fold back into the overlay tracker so
// it stays the exact combined view.
func (c *engineComponent) crossLaneRevive() int {
	revived := 0
	for _, rs := range c.regionShards {
		if rs.sess.DarkLive() > 0 {
			revived += rs.sess.Revive()
		}
	}
	if revived > 0 {
		c.foldRegionDeltas()
	}
	return revived
}

// refreshLiveLabel recomputes the component's live connectivity labels
// after a cut or repair; an intact component drops them (nil), keeping
// the unfailed dispatch path exactly as cheap as before.
func (c *engineComponent) refreshLiveLabel() {
	if c.view.G.NumFailedArcs() == 0 {
		c.liveLabel = nil
		return
	}
	c.liveLabel = c.view.G.LiveComponentLabels()
}

// NumFailedArcsStrong reports how many arcs of the engine topology are
// currently cut, read under the engine mutex (see NumFailedArcs for
// the snapshot form).
func (e *ShardedEngine) NumFailedArcsStrong() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.net.Topology.NumFailedArcs()
}

// DarkLiveStrong returns the number of entries parked dark across all
// lanes, read under the engine mutex (see DarkLive for the snapshot
// form).
func (e *ShardedEngine) DarkLiveStrong() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	total := 0
	for _, sh := range e.shards {
		total += sh.sess.DarkLive()
	}
	return total
}

// IsDarkStrong reports whether the request id is currently parked
// dark, read under the engine mutex (see IsDark for the snapshot
// form).
func (e *ShardedEngine) IsDarkStrong(id ShardedID) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sh, lid, err := e.resolveID(id)
	if err != nil {
		return false, err
	}
	return sh.sess.IsDark(lid)
}
