// Package wdm models a WDM (wavelength-division multiplexing) optical
// network layer over the digraph substrate and runs the full RWA pipeline
// the paper's introduction motivates: requests are routed to dipaths,
// dipaths are assigned wavelengths, and the provisioning either fits
// within the per-fiber wavelength capacity or reports how far it missed.
//
// It is deliberately at the modelling altitude of the paper: links carry
// W interchangeable wavelengths, no conversion, a request occupies one
// wavelength on every fiber along its route, and ADM (add-drop
// multiplexer) cost counts lightpath terminations.
package wdm

import (
	"fmt"

	"wavedag/internal/core"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/load"
	"wavedag/internal/route"
)

// Network is an optical network: a DAG topology plus a uniform per-fiber
// wavelength capacity.
type Network struct {
	Topology    *digraph.Digraph
	Wavelengths int // capacity W of every fiber; 0 means unlimited
}

// RoutingPolicy selects how requests are converted to dipaths.
type RoutingPolicy int

// Routing policies.
const (
	RouteShortest RoutingPolicy = iota // BFS shortest dipaths
	RouteMinLoad                       // sequential min-max-load routing
	RouteUPP                           // unique dipaths (UPP-DAGs only)
)

// Names of the built-in routing strategies, as registered and as
// returned by RoutingPolicy.String. They are constants so the registry
// names can never drift from the documented ones.
//
//wavedag:registry RegisterRoutingStrategy
const (
	RouteShortestName = "shortest"
	RouteMinLoadName  = "min-load"
	RouteUPPName      = "upp"
)

func (p RoutingPolicy) String() string {
	switch p {
	case RouteShortest:
		return RouteShortestName
	case RouteMinLoad:
		return RouteMinLoadName
	case RouteUPP:
		return RouteUPPName
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Provisioning is the result of running the RWA pipeline.
type Provisioning struct {
	Paths       dipath.Family // route of each request, parallel to input
	Wavelengths []int         // wavelength of each request
	NumLambda   int           // wavelengths used in total
	Pi          int           // load of the routing
	Method      core.Method   // coloring algorithm that was applicable
	Feasible    bool          // NumLambda fits the network capacity
	// ADMs counts add-drop multiplexers as distinct (endpoint,
	// wavelength) lightpath terminations: lightpaths chaining through a
	// node on one wavelength share the ADM there.
	ADMs int
}

// Provision runs routing (per the policy's registered strategy) then
// wavelength assignment (per the strongest applicable theorem) for the
// requests. It is a thin wrapper over a throwaway Session with the
// "full" coloring strategy: adds route and account load incrementally,
// and the single Provisioning() call at the end colors once from
// scratch — identical results to the historical one-shot pipeline.
func (n *Network) Provision(reqs []route.Request, policy RoutingPolicy) (*Provisioning, error) {
	strat, err := policy.Strategy()
	if err != nil {
		return nil, err
	}
	s, err := n.NewSession(
		WithRoutingStrategy(strat),
		WithColoringStrategyName(ColoringFull),
		WithCapacityHint(len(reqs)),
	)
	if err != nil {
		return nil, err // already layer-labelled by NewSession
	}
	for _, req := range reqs {
		if _, err := s.Add(req); err != nil {
			return nil, err
		}
	}
	// The throwaway session is discarded right after materialisation, so
	// the Provisioning may alias its slot table (no snapshot copy).
	return s.provisioning(true)
}

// Assign runs only the wavelength-assignment half on pre-routed dipaths.
func (n *Network) Assign(fam dipath.Family) (*Provisioning, error) {
	res, method, err := core.ColorDAG(n.Topology, fam)
	if err != nil {
		return nil, fmt.Errorf("wdm: wavelength assignment: %w", err)
	}
	p := &Provisioning{
		Paths:       fam,
		Wavelengths: res.Colors,
		NumLambda:   res.NumColors,
		Pi:          res.Pi,
		Method:      method,
		ADMs:        countADMs(fam, res.Colors),
	}
	p.Feasible = n.Wavelengths == 0 || p.NumLambda <= n.Wavelengths
	return p, nil
}

// Utilization returns, per arc, the fraction of the capacity in use
// (load / W). With unlimited capacity the divisor is the number of
// wavelengths actually used.
func (n *Network) Utilization(p *Provisioning) []float64 {
	loads := load.ArcLoads(n.Topology, p.Paths)
	denom := n.Wavelengths
	if denom == 0 {
		denom = p.NumLambda
	}
	util := make([]float64, len(loads))
	if denom == 0 {
		return util
	}
	for a, l := range loads {
		util[a] = float64(l) / float64(denom)
	}
	return util
}

// LambdaPlan reports, for one wavelength, the arcs it occupies; the union
// over a wavelength's dipaths is arc-disjoint by construction. Dedup runs
// on a bitset over the dense arc identifiers, not a map.
func LambdaPlan(g *digraph.Digraph, p *Provisioning, lambda int) []digraph.ArcID {
	seen := make([]uint64, (g.NumArcs()+63)/64)
	var arcs []digraph.ArcID
	for i, path := range p.Paths {
		if p.Wavelengths[i] != lambda {
			continue
		}
		for _, a := range path.Arcs() {
			if seen[a/64]&(1<<(uint(a)%64)) == 0 {
				seen[a/64] |= 1 << (uint(a) % 64)
				arcs = append(arcs, a)
			}
		}
	}
	return arcs
}
