package wdm

// Budgeted admission tests: the Theorem-1 precheck on cycle-free
// topologies, the color-then-rollback probe on general DAGs, the three
// built-in admission strategies, and the budgeted engines (plain and
// sharded/two-level) under randomized churn — the λ ≤ w acceptance
// criteria of the admission-control work.

import (
	"errors"
	"math/rand"
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/gen"
	"wavedag/internal/load"
	"wavedag/internal/route"
)

// diamond builds s -> {a, b} -> t: two arc-disjoint routes between the
// single source and sink, no internal cycle (the one undirected cycle
// passes through both).
func diamond(t *testing.T) (*digraph.Digraph, [4]digraph.Vertex) {
	t.Helper()
	g := digraph.New(4)
	const s, a, b, tt = 0, 1, 2, 3
	g.MustAddArc(s, a)
	g.MustAddArc(a, tt)
	g.MustAddArc(s, b)
	g.MustAddArc(b, tt)
	return g, [4]digraph.Vertex{s, a, b, tt}
}

func TestBudgetedSessionRejects(t *testing.T) {
	g, v := diamond(t)
	net := &Network{Topology: g}
	sess, err := net.NewSession(WithWavelengthBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Budget() != 1 || sess.AdmissionStrategyName() != AdmissionReject {
		t.Fatalf("budget %d strategy %q", sess.Budget(), sess.AdmissionStrategyName())
	}
	// Saturate the s->a->t route explicitly.
	p := dipath.MustFromVertices(g, v[0], v[1], v[3])
	if _, adm, err := sess.TryAddPath(p); err != nil || !adm.Accepted {
		t.Fatalf("first offer: %+v %v", adm, err)
	}
	// The same path again is over budget: TryAddPath reports rejection
	// without an error, Add wraps ErrBudgetExceeded, and neither touches
	// any state.
	if _, adm, err := sess.TryAddPath(p); err != nil || adm.Accepted {
		t.Fatalf("over-budget offer: %+v %v", adm, err)
	}
	if sess.Len() != 1 || sess.Pi() != 1 {
		t.Fatalf("rejection mutated state: len %d π %d", sess.Len(), sess.Pi())
	}
	// Shortest routing picks s->a->t (arc order), so a routed Add hits
	// the saturated route and must fail with the sentinel.
	if _, err := sess.Add(route.Request{Src: v[0], Dst: v[3]}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Add returned %v, want ErrBudgetExceeded", err)
	}
	st := sess.AdmissionStats()
	if st.Requests != 3 || st.Accepted != 1 || st.Rejected != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRetryAltRouteRecovers(t *testing.T) {
	g, v := diamond(t)
	net := &Network{Topology: g}
	sess, err := net.NewSession(
		WithWavelengthBudget(1),
		WithAdmissionStrategyName(AdmissionRetryAltRoute),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, adm, err := sess.TryAddPath(dipath.MustFromVertices(g, v[0], v[1], v[3])); err != nil || !adm.Accepted {
		t.Fatalf("first offer: %+v %v", adm, err)
	}
	// The shortest route is saturated; the strategy's min-load router
	// must recover the request through s->b->t.
	id, adm, err := sess.TryAdd(route.Request{Src: v[0], Dst: v[3]})
	if err != nil || !adm.Accepted || !adm.Retried {
		t.Fatalf("retry offer: %+v %v", adm, err)
	}
	p, err := sess.Path(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumArcs() != 2 || p.Vertices()[1] != v[2] {
		t.Fatalf("recovered path %v does not ride the alternate branch", p)
	}
	if n, err := sess.NumLambda(); err != nil || n > 1 {
		t.Fatalf("λ=%d past the budget (%v)", n, err)
	}
	// Both branches full: a third request has no alternative left.
	if _, adm, err := sess.TryAdd(route.Request{Src: v[0], Dst: v[3]}); err != nil || adm.Accepted {
		t.Fatalf("exhausted offer: %+v %v", adm, err)
	}
	st := sess.AdmissionStats()
	if st.Retried != 1 || st.Rejected != 1 || st.Accepted != 2 {
		t.Fatalf("stats %+v", st)
	}
	if err := sess.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDegradeAcceptsBestEffort(t *testing.T) {
	g, v := diamond(t)
	net := &Network{Topology: g}
	sess, err := net.NewSession(
		WithWavelengthBudget(1),
		WithAdmissionStrategyName(AdmissionDegrade),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := dipath.MustFromVertices(g, v[0], v[1], v[3])
	if _, adm, err := sess.TryAddPath(p); err != nil || !adm.Accepted || adm.BestEffort {
		t.Fatalf("first offer: %+v %v", adm, err)
	}
	id, adm, err := sess.TryAddPath(p)
	if err != nil || !adm.Accepted || !adm.BestEffort {
		t.Fatalf("degraded offer: %+v %v", adm, err)
	}
	if be, err := sess.IsBestEffort(id); err != nil || !be {
		t.Fatalf("IsBestEffort = %v, %v", be, err)
	}
	if sess.BestEffortLive() != 1 {
		t.Fatalf("BestEffortLive = %d", sess.BestEffortLive())
	}
	// Best-effort traffic rides past the budget: λ exceeds it, but the
	// assignment stays proper and the stats report the excess separately.
	if n, err := sess.NumLambda(); err != nil || n != 2 {
		t.Fatalf("λ=%d, want 2 (%v)", n, err)
	}
	if err := sess.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Remove(id); err != nil {
		t.Fatal(err)
	}
	if sess.BestEffortLive() != 0 {
		t.Fatalf("BestEffortLive = %d after teardown", sess.BestEffortLive())
	}
	st := sess.AdmissionStats()
	if st.BestEffort != 1 || st.Rejected != 0 || st.Accepted != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// budgetChurn drives a budgeted session through a randomized trace and
// asserts the acceptance criteria after every step: π ≤ w (the accepted
// set stays Theorem-1 feasible), λ ≤ w, Verify-clean, rejections are
// exactly the Theorem-1-infeasible offers (cycle-free sessions), and a
// rejection never mutates observable state.
func budgetChurn(t *testing.T, g *digraph.Digraph, w int, steps int, seed int64, opts ...SessionOption) {
	t.Helper()
	net := &Network{Topology: g}
	sess, err := net.NewSession(append([]SessionOption{WithWavelengthBudget(w)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	pool := route.NewRouter(g).AllToAll()
	if len(pool) == 0 {
		t.Fatal("no routable pairs")
	}
	rng := rand.New(rand.NewSource(seed))
	shadow := load.NewTracker(g)
	exactPrecheck := sess.cycleFree && !sess.rollbackProbe
	var ids []SessionID
	var paths []*dipath.Path
	for step := 0; step < steps; step++ {
		if len(ids) == 0 || rng.Intn(3) != 0 {
			req := pool[rng.Intn(len(pool))]
			lenBefore, piBefore := sess.Len(), sess.Pi()
			id, adm, err := sess.TryAdd(req)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if adm.Accepted {
				p, err := sess.Path(id)
				if err != nil {
					t.Fatal(err)
				}
				shadow.Add(p)
				ids = append(ids, id)
				paths = append(paths, p)
			} else {
				if sess.Len() != lenBefore || sess.Pi() != piBefore {
					t.Fatalf("step %d: rejection mutated state", step)
				}
				if exactPrecheck {
					// The precheck is exact: the rejected request's shortest
					// route must genuinely not fit the budget.
					p, rerr := route.NewRouter(g).ShortestPath(req.Src, req.Dst)
					if rerr != nil {
						t.Fatal(rerr)
					}
					if shadow.FitsAdditional(p, w) {
						t.Fatalf("step %d: rejected a Theorem-1-admissible request", step)
					}
				}
			}
		} else {
			i := rng.Intn(len(ids))
			if err := sess.Remove(ids[i]); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			shadow.Remove(paths[i])
			ids[i], paths[i] = ids[len(ids)-1], paths[len(paths)-1]
			ids, paths = ids[:len(ids)-1], paths[:len(paths)-1]
		}
		if pi := sess.Pi(); pi > w {
			t.Fatalf("step %d: π=%d past budget %d", step, pi, w)
		}
		if n, err := sess.NumLambda(); err != nil || n > w {
			t.Fatalf("step %d: λ=%d past budget %d (%v)", step, n, w, err)
		}
		if err := sess.Verify(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	st := sess.AdmissionStats()
	if st.Accepted == 0 || st.Rejected == 0 {
		t.Fatalf("degenerate trace: stats %+v", st)
	}
}

func TestBudgetChurnCycleFree(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(24, 4, 4, 0.25, 131)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		budgetChurn(t, g, w, 400, 132+int64(w))
	}
}

func TestBudgetChurnRollbackProbe(t *testing.T) {
	// Same cycle-free topology, forced down the general-DAG probe: the
	// invariants must hold on both admission paths.
	g, err := gen.RandomNoInternalCycleDAG(24, 4, 4, 0.25, 131)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		budgetChurn(t, g, w, 300, 141+int64(w), WithAdmissionRollbackProbe())
	}
}

func TestBudgetChurnInternalCycle(t *testing.T) {
	// Topologies with internal cycles take the color-then-rollback path
	// natively; λ ≤ w and rejection-leaves-no-trace must still hold.
	g, _, err := gen.InternalCycleGadget(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3} {
		budgetChurn(t, g, w, 300, 151+int64(w))
	}
}

func TestBudgetChurnRetryStrategy(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(24, 4, 4, 0.3, 161)
	if err != nil {
		t.Fatal(err)
	}
	net := &Network{Topology: g}
	const w = 2
	sess, err := net.NewSession(
		WithWavelengthBudget(w),
		WithAdmissionStrategyName(AdmissionRetryAltRoute),
	)
	if err != nil {
		t.Fatal(err)
	}
	pool := route.NewRouter(g).AllToAll()
	rng := rand.New(rand.NewSource(162))
	var ids []SessionID
	for step := 0; step < 500; step++ {
		if len(ids) == 0 || rng.Intn(3) != 0 {
			if id, adm, err := sess.TryAdd(pool[rng.Intn(len(pool))]); err != nil {
				t.Fatal(err)
			} else if adm.Accepted {
				ids = append(ids, id)
			}
		} else {
			i := rng.Intn(len(ids))
			if err := sess.Remove(ids[i]); err != nil {
				t.Fatal(err)
			}
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
		}
		if n, err := sess.NumLambda(); err != nil || n > w {
			t.Fatalf("step %d: λ=%d past budget (%v)", step, n, err)
		}
		if sess.Pi() > w {
			t.Fatalf("step %d: π=%d past budget", step, sess.Pi())
		}
	}
	if err := sess.Verify(); err != nil {
		t.Fatal(err)
	}
	if st := sess.AdmissionStats(); st.Retried == 0 {
		t.Skipf("trace never exercised the alternate-route recovery: %+v", st)
	}
}

// TestBudgetedReroute pins the budget gate on the reroute path: a
// reroute whose new path would break the budget keeps the old route.
func TestBudgetedReroute(t *testing.T) {
	g, v := diamond(t)
	net := &Network{Topology: g}
	sess, err := net.NewSession(
		WithWavelengthBudget(1),
		WithRoutingPolicy(RouteMinLoad),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy s->a->t, then pin a second request onto s->b->t.
	idA, adm, err := sess.TryAddPath(dipath.MustFromVertices(g, v[0], v[1], v[3]))
	if err != nil || !adm.Accepted {
		t.Fatalf("%+v %v", adm, err)
	}
	idB, adm, err := sess.TryAddPath(dipath.MustFromVertices(g, v[0], v[2], v[3]))
	if err != nil || !adm.Accepted {
		t.Fatalf("%+v %v", adm, err)
	}
	_ = idA
	// Rerouting B sees both branches at load 1 (its own excluded): the
	// min-load route ties back to its own branch or the other; either
	// way the budget holds and the session stays consistent.
	if _, err := sess.Reroute(idB); err != nil {
		t.Fatal(err)
	}
	if n, err := sess.NumLambda(); err != nil || n > 1 {
		t.Fatalf("λ=%d past budget (%v)", n, err)
	}
	if err := sess.Verify(); err != nil {
		t.Fatal(err)
	}
}

// ── Sharded engine budgets ─────────────────────────────────────────────

// budgetEngineChurn drives a budgeted sharded engine through batched
// randomized churn via ApplyBatchInto and asserts λ ≤ w, π ≤ w and
// Verify-clean at every batch boundary, plus the stats aggregation.
func budgetEngineChurn(t *testing.T, g *digraph.Digraph, w, batches, batchSize int, seed int64, opts ...ShardedOption) {
	t.Helper()
	net := &Network{Topology: g}
	eng, err := net.NewShardedEngine(append([]ShardedOption{WithEngineWavelengthBudget(w)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pool := route.NewRouter(g).AllToAll()
	rng := rand.New(rand.NewSource(seed))
	var ids []ShardedID
	var results []BatchResult
	accepted, rejected := 0, 0
	for b := 0; b < batches; b++ {
		ops := make([]BatchOp, 0, batchSize)
		removedIdx := make(map[int]bool)
		for len(ops) < batchSize {
			if len(ids) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(ids))
				if removedIdx[i] {
					continue
				}
				removedIdx[i] = true
				ops = append(ops, RemoveOp(ids[i]))
			} else {
				ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
			}
		}
		results = eng.ApplyBatchInto(ops, results)
		for k, res := range results {
			switch {
			case res.Err == nil && ops[k].Kind == BatchAdd:
				ids = append(ids, res.ID)
				accepted++
			case res.Err != nil && ops[k].Kind == BatchAdd:
				if !errors.Is(res.Err, ErrBudgetExceeded) {
					t.Fatalf("batch %d op %d: %v", b, k, res.Err)
				}
				rejected++
			case res.Err != nil:
				t.Fatalf("batch %d op %d: %v", b, k, res.Err)
			}
		}
		// Compact the id list (removals processed above marked indices).
		if len(removedIdx) > 0 {
			kept := ids[:0]
			for i, id := range ids {
				if !removedIdx[i] {
					kept = append(kept, id)
				}
			}
			ids = kept
		}
		if pi := eng.Pi(); pi > w {
			t.Fatalf("batch %d: π=%d past budget %d", b, pi, w)
		}
		if n, err := eng.NumLambda(); err != nil || n > w {
			t.Fatalf("batch %d: λ=%d past budget %d (%v)", b, n, w, err)
		}
		if err := eng.Verify(); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	st := eng.Stats()
	if st.Accepted() != accepted || st.Rejected() != rejected {
		t.Fatalf("stats accepted/rejected = %d/%d, observed %d/%d",
			st.Accepted(), st.Rejected(), accepted, rejected)
	}
	if st.Budget != w {
		t.Fatalf("stats budget %d, want %d", st.Budget, w)
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("degenerate trace: %d accepted, %d rejected", accepted, rejected)
	}
}

func multiComponentTopo(t *testing.T, parts, nInternal int, seed int64) *digraph.Digraph {
	t.Helper()
	insts := make([]gen.Instance, parts)
	for i := range insts {
		g, err := gen.RandomNoInternalCycleDAG(nInternal, 4, 4, 0.25, seed+int64(i))
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = gen.Instance{G: g}
	}
	g, _ := gen.DisjointUnion(insts...)
	return g
}

func TestBudgetedEngineChurn(t *testing.T) {
	g := multiComponentTopo(t, 4, 20, 171)
	for _, w := range []int{2, 4} {
		budgetEngineChurn(t, g, w, 30, 32, 172+int64(w), WithSubshardThreshold(0))
	}
}

func TestBudgetedEngineChurnTwoLevel(t *testing.T) {
	parts := make([]*digraph.Digraph, 4)
	for i := range parts {
		g, err := gen.RandomNoInternalCycleDAG(16, 3, 3, 0.25, int64(181+i))
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = g
	}
	g, _, err := gen.GlueChain(parts...)
	if err != nil {
		t.Fatal(err)
	}
	// Force the two-level layout and band the budget: regions admit
	// against w-1, the overlay lane against 1.
	budgetEngineChurn(t, g, 4, 30, 32, 187,
		WithSubshardThreshold(16), WithOverlayBudgetSlice(1))
	// Default slice.
	budgetEngineChurn(t, g, 5, 30, 32, 188, WithSubshardThreshold(16))
}

func TestBudgetedEngineUnbandableBudget(t *testing.T) {
	parts := make([]*digraph.Digraph, 3)
	for i := range parts {
		g, err := gen.RandomNoInternalCycleDAG(16, 3, 3, 0.25, int64(191+i))
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = g
	}
	g, _, err := gen.GlueChain(parts...)
	if err != nil {
		t.Fatal(err)
	}
	net := &Network{Topology: g}
	// Budget 1 cannot split into a region band and an overlay band.
	if _, err := net.NewShardedEngine(
		WithEngineWavelengthBudget(1), WithSubshardThreshold(16),
	); err == nil {
		t.Fatal("budget 1 accepted on a two-level layout")
	}
	// The same budget runs single-level.
	eng, err := net.NewShardedEngine(
		WithEngineWavelengthBudget(1), WithSubshardThreshold(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
}

// TestApplyBatchIntoReuse pins the pooled-results contract: the buffer
// is reused when it fits, stale entries are cleared, and results match
// a fresh allocation.
func TestApplyBatchIntoReuse(t *testing.T) {
	g := multiComponentTopo(t, 2, 12, 201)
	net := &Network{Topology: g}
	eng, err := net.NewShardedEngine()
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pool := route.NewRouter(g).AllToAll()
	ops := make([]BatchOp, 8)
	for i := range ops {
		ops[i] = AddOp(pool[i%len(pool)])
	}
	results := eng.ApplyBatchInto(ops, nil)
	for _, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	// Reuse with a smaller batch: the slice must shrink, keep its
	// backing array, and carry no stale ids/errors.
	small := []BatchOp{RemoveOp(results[0].ID), RemoveOp(results[1].ID)}
	reused := eng.ApplyBatchInto(small, results)
	if len(reused) != 2 {
		t.Fatalf("len %d, want 2", len(reused))
	}
	if &reused[0] != &results[0] {
		t.Fatal("buffer was not reused")
	}
	for i, res := range reused {
		if res.Err != nil {
			t.Fatalf("op %d: %v", i, res.Err)
		}
		if res.ID != small[i].ID {
			t.Fatalf("op %d: stale result id %+v", i, res.ID)
		}
	}
}

// TestBudgetedEngineConcurrentBatches stresses the budgeted fan-out:
// concurrent ApplyBatch callers on a budgeted two-level engine must
// stay race-free and leave a consistent, within-budget state (run under
// -race -cpu=1,4 in CI).
func TestBudgetedEngineConcurrentBatches(t *testing.T) {
	parts := make([]*digraph.Digraph, 3)
	for i := range parts {
		g, err := gen.RandomNoInternalCycleDAG(16, 3, 3, 0.25, int64(211+i))
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = g
	}
	g, _, err := gen.GlueChain(parts...)
	if err != nil {
		t.Fatal(err)
	}
	const w = 4
	net := &Network{Topology: g}
	eng, err := net.NewShardedEngine(
		WithEngineWavelengthBudget(w), WithSubshardThreshold(16), WithShardWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pool := route.NewRouter(g).AllToAll()
	done := make(chan error, 4)
	for gor := 0; gor < 4; gor++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			var ids []ShardedID
			for iter := 0; iter < 40; iter++ {
				ops := make([]BatchOp, 0, 24)
				for len(ops) < cap(ops) {
					ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
				}
				for _, res := range eng.ApplyBatch(ops) {
					if res.Err == nil {
						ids = append(ids, res.ID)
					} else if !errors.Is(res.Err, ErrBudgetExceeded) {
						done <- res.Err
						return
					}
				}
				for len(ids) > 12 {
					if err := eng.Remove(ids[len(ids)-1]); err != nil {
						done <- err
						return
					}
					ids = ids[:len(ids)-1]
				}
			}
			done <- nil
		}(int64(221 + gor))
	}
	for gor := 0; gor < 4; gor++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if n, err := eng.NumLambda(); err != nil || n > w {
		t.Fatalf("λ=%d past budget (%v)", n, err)
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
}
