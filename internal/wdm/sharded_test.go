package wdm

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"wavedag/internal/core"
	"wavedag/internal/digraph"
	"wavedag/internal/gen"
	"wavedag/internal/route"
)

// multiComponentNetwork builds a topology with several nontrivial
// weakly connected components (disjoint union of Theorem 1 DAGs).
func multiComponentNetwork(t testing.TB, comps int, seed int64) *Network {
	t.Helper()
	parts := make([]gen.Instance, comps)
	for i := range parts {
		g, err := gen.RandomNoInternalCycleDAG(12, 3, 3, 0.25, seed+int64(i))
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = gen.Instance{G: g}
	}
	g, _ := gen.DisjointUnion(parts...)
	return &Network{Topology: g}
}

// TestShardedEquivalence pins the sharded engine to a single Session
// fed the identical op stream: routes must be exactly equal (the
// partition preserves arc order, so per-shard BFS/Dijkstra match the
// global ones), π must be exactly equal, λ within the shared slack, and
// every shard Verify-clean after every batch.
func TestShardedEquivalence(t *testing.T) {
	for _, policy := range []RoutingPolicy{RouteShortest, RouteMinLoad} {
		t.Run(policy.String(), func(t *testing.T) {
			net := multiComponentNetwork(t, 5, 101)
			const slack = 2
			single, err := net.NewSession(WithRoutingPolicy(policy), WithSlack(slack))
			if err != nil {
				t.Fatal(err)
			}
			eng, err := net.NewShardedEngine(
				WithShardWorkers(4),
				WithShardSessionOptions(WithRoutingPolicy(policy), WithSlack(slack)),
			)
			if err != nil {
				t.Fatal(err)
			}
			if eng.NumShards() != 5 {
				t.Fatalf("NumShards = %d, want 5", eng.NumShards())
			}

			pool := route.NewRouter(net.Topology).AllToAll()
			rng := rand.New(rand.NewSource(7))

			type pairID struct {
				sid SessionID
				eid ShardedID
			}
			var live []pairID

			batches := 60
			if testing.Short() {
				batches = 15
			}
			for batch := 0; batch < batches; batch++ {
				// Build a batch referencing only pre-batch ids.
				nops := 1 + rng.Intn(20)
				ops := make([]BatchOp, 0, nops)
				var removedIdx []int
				removed := map[int]bool{}
				for k := 0; k < nops; k++ {
					if len(live) == 0 || len(removed) >= len(live) || (rng.Intn(3) != 0 && len(live) < 80) {
						ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
					} else {
						j := rng.Intn(len(live))
						for removed[j] {
							j = (j + 1) % len(live)
						}
						removed[j] = true
						removedIdx = append(removedIdx, j)
						ops = append(ops, RemoveOp(live[j].eid))
					}
				}
				results := eng.ApplyBatch(ops)
				// Replay the same events on the single session, in order.
				ri := 0
				for k, op := range ops {
					switch op.Kind {
					case BatchAdd:
						sid, err := single.Add(op.Req)
						if err != nil {
							t.Fatalf("batch %d: single Add: %v", batch, err)
						}
						if results[k].Err != nil {
							t.Fatalf("batch %d: sharded Add: %v", batch, results[k].Err)
						}
						live = append(live, pairID{sid, results[k].ID})
					case BatchRemove:
						j := removedIdx[ri]
						ri++
						if err := single.Remove(live[j].sid); err != nil {
							t.Fatalf("batch %d: single Remove: %v", batch, err)
						}
						if results[k].Err != nil {
							t.Fatalf("batch %d: sharded Remove: %v", batch, results[k].Err)
						}
					}
				}
				// Compact the live list (largest index first).
				for i := len(live) - 1; i >= 0; i-- {
					if removed[i] {
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
					}
				}

				if got, want := eng.Len(), single.Len(); got != want {
					t.Fatalf("batch %d: Len = %d, want %d", batch, got, want)
				}
				if got, want := eng.Pi(), single.Pi(); got != want {
					t.Fatalf("batch %d: π = %d, want %d", batch, got, want)
				}
				en, err := eng.NumLambda()
				if err != nil {
					t.Fatal(err)
				}
				sn, err := single.NumLambda()
				if err != nil {
					t.Fatal(err)
				}
				if diff := en - sn; diff > slack || diff < -slack {
					t.Fatalf("batch %d: sharded λ = %d vs single λ = %d, diverged past slack %d",
						batch, en, sn, slack)
				}
				if err := eng.Verify(); err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				// Spot-check route equality through the id translation.
				for probes := 0; probes < 5 && len(live) > 0; probes++ {
					j := rng.Intn(len(live))
					ep, err := eng.Path(live[j].eid)
					if err != nil {
						t.Fatal(err)
					}
					sp, err := single.Path(live[j].sid)
					if err != nil {
						t.Fatal(err)
					}
					if !ep.Equal(sp) {
						t.Fatalf("batch %d: routes diverge: %v vs %v", batch, ep, sp)
					}
				}
			}

			// Merged provisioning: π/λ consistent with the aggregates, one
			// entry per live request, proper globally.
			prov, err := eng.Provisioning()
			if err != nil {
				t.Fatal(err)
			}
			if len(prov.Paths) != eng.Len() {
				t.Fatalf("merged provisioning has %d paths for %d live requests",
					len(prov.Paths), eng.Len())
			}
			if prov.Pi != eng.Pi() {
				t.Fatalf("merged π = %d, want %d", prov.Pi, eng.Pi())
			}
			// The merged assignment must be proper over the global topology
			// even though every shard colored independently from 0.
			res := &core.Result{Colors: prov.Wavelengths, NumColors: prov.NumLambda, Pi: prov.Pi}
			if err := core.Verify(net.Topology, prov.Paths, res); err != nil {
				t.Fatalf("merged provisioning not proper: %v", err)
			}
		})
	}
}

// TestShardedDeterminism runs one op stream through engines with 1 and
// 4 workers: the merged output must be byte-identical — shard
// completion order must not leak into results.
func TestShardedDeterminism(t *testing.T) {
	net := multiComponentNetwork(t, 6, 33)
	pool := route.NewRouter(net.Topology).AllToAll()

	run := func(workers int) *Provisioning {
		eng, err := net.NewShardedEngine(WithShardWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		var ops []BatchOp
		for k := 0; k < 200; k++ {
			ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
		}
		var evens []ShardedID
		for i, res := range eng.ApplyBatch(ops) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if i%2 == 0 {
				evens = append(evens, res.ID)
			}
		}
		rem := make([]BatchOp, len(evens))
		for i, id := range evens {
			rem[i] = RemoveOp(id)
		}
		for _, res := range eng.ApplyBatch(rem) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
		prov, err := eng.Provisioning()
		if err != nil {
			t.Fatal(err)
		}
		return prov
	}

	p1, p4 := run(1), run(4)
	if p1.NumLambda != p4.NumLambda || p1.Pi != p4.Pi || p1.ADMs != p4.ADMs {
		t.Fatalf("aggregates diverge across worker counts: λ %d/%d π %d/%d ADMs %d/%d",
			p1.NumLambda, p4.NumLambda, p1.Pi, p4.Pi, p1.ADMs, p4.ADMs)
	}
	if len(p1.Paths) != len(p4.Paths) {
		t.Fatalf("path counts diverge: %d vs %d", len(p1.Paths), len(p4.Paths))
	}
	for i := range p1.Paths {
		if !p1.Paths[i].Equal(p4.Paths[i]) || p1.Wavelengths[i] != p4.Wavelengths[i] {
			t.Fatalf("entry %d diverges across worker counts", i)
		}
	}
}

// TestShardedDispatchErrors pins the O(1) dispatcher rejections.
func TestShardedDispatchErrors(t *testing.T) {
	net := multiComponentNetwork(t, 2, 77)
	eng, err := net.NewShardedEngine()
	if err != nil {
		t.Fatal(err)
	}
	label := net.Topology.ComponentLabels()
	var src, dst int
	for v := range label {
		if label[v] == 0 {
			src = v
		} else if label[v] == 1 {
			dst = v
		}
	}
	// Cross-component requests are unroutable — same answer a full
	// search gives, found without one.
	_, err = eng.Add(route.Request{Src: digraph.Vertex(src), Dst: digraph.Vertex(dst)})
	var noRoute route.ErrNoRoute
	if !errors.As(err, &noRoute) {
		t.Fatalf("cross-component Add: got %v, want ErrNoRoute", err)
	}
	if _, err := eng.Add(route.Request{Src: -1, Dst: 0}); err == nil {
		t.Fatal("out-of-range Add accepted")
	}
	if err := eng.Remove(ShardedID{Shard: 99}); err == nil {
		t.Fatal("unknown-shard Remove accepted")
	}
	if err := eng.Remove(ShardedID{Shard: 0, ID: 12345}); err == nil {
		t.Fatal("stale id Remove accepted")
	}
	// A batch with one bad op fails that op alone.
	results := eng.ApplyBatch([]BatchOp{
		AddOp(pool0(t, net)),
		AddOp(route.Request{Src: digraph.Vertex(src), Dst: digraph.Vertex(dst)}),
	})
	if results[0].Err != nil {
		t.Fatalf("good op failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("bad op succeeded")
	}
	// Intra-component but unroutable (directed): the error must name the
	// caller's global vertices, not the shard-local translation.
	r := route.NewRouter(net.Topology)
	n := net.Topology.NumVertices()
	found := false
	for u := 0; u < n && !found; u++ {
		for v := 0; v < n && !found; v++ {
			if u == v || label[u] != label[v] {
				continue
			}
			req := route.Request{Src: digraph.Vertex(u), Dst: digraph.Vertex(v)}
			if _, rerr := r.ShortestPath(req.Src, req.Dst); rerr == nil {
				continue
			}
			found = true
			_, aerr := eng.Add(req)
			var nr route.ErrNoRoute
			if !errors.As(aerr, &nr) {
				t.Fatalf("intra-component unroutable Add: got %v, want ErrNoRoute", aerr)
			}
			if nr.Req != req {
				t.Fatalf("error names %v, want the global request %v", nr.Req, req)
			}
		}
	}
	if !found {
		t.Fatal("no intra-component unroutable pair in the fixture")
	}
}

func pool0(t *testing.T, net *Network) route.Request {
	t.Helper()
	pool := route.NewRouter(net.Topology).AllToAll()
	if len(pool) == 0 {
		t.Fatal("no routable pairs")
	}
	return pool[0]
}

// TestShardedConcurrentStress hammers one engine from several
// goroutines at once — batches, aggregates, provisioning snapshots —
// under the race detector in CI (-race -cpu=1,4). Each goroutine
// removes only ids it added itself; the engine's mutex serialises
// batches, the in-batch fan-out runs on 4 workers.
func TestShardedConcurrentStress(t *testing.T) {
	net := multiComponentNetwork(t, 6, 55)
	eng, err := net.NewShardedEngine(WithShardWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	pool := route.NewRouter(net.Topology).AllToAll()

	const goroutines = 4
	iters := 60
	if testing.Short() {
		iters = 15
	}
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + gi)))
			var mine []ShardedID
			// Batches above serialBatchThreshold, so the stress runs
			// through the pooled fan-out rather than the inline path.
			nops := 2 * serialBatchThreshold
			for it := 0; it < iters; it++ {
				ops := make([]BatchOp, 0, nops)
				removeFrom := len(mine)
				nRemove := 0
				for k := 0; k < nops; k++ {
					if nRemove < removeFrom && rng.Intn(3) == 0 {
						ops = append(ops, RemoveOp(mine[nRemove]))
						nRemove++
					} else {
						ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
					}
				}
				mine = mine[nRemove:]
				for i, res := range eng.ApplyBatch(ops) {
					if res.Err != nil {
						errc <- res.Err
						return
					}
					if ops[i].Kind == BatchAdd {
						mine = append(mine, res.ID)
					}
				}
				switch it % 3 {
				case 0:
					eng.Pi()
				case 1:
					if _, err := eng.NumLambda(); err != nil {
						errc <- err
						return
					}
				case 2:
					if _, err := eng.Provisioning(); err != nil {
						errc <- err
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
}
