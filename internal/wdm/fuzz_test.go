package wdm

import (
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/route"
)

// FuzzTheorem1Precheck drives the Theorem-1 admission precheck against
// the general-DAG color-then-rollback probe (WithAdmissionRollbackProbe)
// replaying the identical op stream. On an internal-cycle-free topology
// a dipath family fits in w wavelengths exactly when its load is at
// most w, which pins the two sessions together:
//
//   - probe-accept ⟹ precheck-accept: any proper assignment needs at
//     least π wavelengths (paths sharing an arc conflict pairwise), so
//     a request the probe colored within w cannot have pushed the load
//     over w. A violation here is a genuine Theorem-1 bug.
//   - precheck-accept with probe-reject is allowed: the probe's
//     first-fit-plus-repack is a heuristic and may miss a w-coloring
//     that exists. When it happens, the precheck session must certify
//     the theorem by actually settling at λ ≤ w with the request held
//     (the cold pipeline guarantee behind enforceBudgetLambda); the
//     request is then removed again to keep the two sessions replaying
//     the same live family.
//
// Topologies are random orientations of random trees: a tree has no
// undirected cycle at all, so every orientation is an
// internal-cycle-free DAG, and the generator can never produce an input
// outside the theorem's hypothesis.
func FuzzTheorem1Precheck(f *testing.F) {
	f.Add([]byte{8, 1, 0xa5, 3, 7, 1, 4, 9, 2, 8, 6, 0, 5, 3, 7, 1})
	f.Add([]byte{15, 2, 0x5a, 1, 1, 2, 3, 5, 8, 13, 4, 12, 7, 9, 0, 6, 11, 2})
	f.Add([]byte{4, 0, 0xff, 0, 1, 2, 3, 0, 1, 2, 3})
	f.Add([]byte("210711!0210011"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip("not enough bytes")
		}
		n := 2 + int(data[0]%14)
		w := 1 + int(data[1]%3)
		idx := 2
		next := func() byte {
			b := data[idx%len(data)]
			idx++
			return b
		}

		g := digraph.New(n)
		for v := 1; v < n; v++ {
			parent := digraph.Vertex(int(next()) % v)
			var err error
			if next()&1 == 0 {
				_, err = g.AddArc(parent, digraph.Vertex(v))
			} else {
				_, err = g.AddArc(digraph.Vertex(v), parent)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		net := &Network{Topology: g}
		pre, err := net.NewSession(WithWavelengthBudget(w))
		if err != nil {
			t.Fatalf("precheck session: %v", err)
		}
		probe, err := net.NewSession(WithWavelengthBudget(w), WithAdmissionRollbackProbe())
		if err != nil {
			t.Fatalf("probe session: %v", err)
		}

		type pair struct{ pre, probe SessionID }
		var live []pair
		ops := 8 + int(next())%24
		for i := 0; i < ops; i++ {
			if len(live) > 0 && next()%4 == 0 {
				k := int(next()) % len(live)
				pr := live[k]
				live = append(live[:k], live[k+1:]...)
				if err := pre.Remove(pr.pre); err != nil {
					t.Fatalf("precheck remove: %v", err)
				}
				if err := probe.Remove(pr.probe); err != nil {
					t.Fatalf("probe remove: %v", err)
				}
				continue
			}
			src := digraph.Vertex(int(next()) % n)
			dst := digraph.Vertex(int(next()) % n)
			if src == dst {
				continue
			}
			req := route.Request{Src: src, Dst: dst}
			id1, adm1, err1 := pre.TryAdd(req)
			id2, adm2, err2 := probe.TryAdd(req)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("routing disagreement on %v->%v: precheck err=%v, probe err=%v", src, dst, err1, err2)
			}
			if err1 != nil {
				continue // no route for either; identical by construction
			}
			switch {
			case adm1.Accepted && adm2.Accepted:
				live = append(live, pair{id1, id2})
			case adm2.Accepted && !adm1.Accepted:
				t.Fatalf("probe colored %v->%v within w=%d but the load precheck rejected it: λ ≥ π violated (π=%d)",
					src, dst, w, pre.Pi())
			case adm1.Accepted && !adm2.Accepted:
				// The probe's heuristic missed a coloring Theorem 1
				// guarantees. The precheck session must be holding one.
				nl, err := pre.NumLambda()
				if err != nil {
					t.Fatal(err)
				}
				if nl > w {
					t.Fatalf("precheck accepted %v->%v but settled at λ=%d > w=%d: Theorem-1 certificate missing",
						src, dst, nl, w)
				}
				if err := pre.Remove(id1); err != nil { // resynchronize the replay
					t.Fatalf("precheck resync remove: %v", err)
				}
			}
		}

		// The two sessions held the same family throughout, so their
		// aggregate state must agree, and both must verify within budget.
		if pre.Len() != probe.Len() {
			t.Fatalf("live counts diverged: precheck %d, probe %d", pre.Len(), probe.Len())
		}
		if pre.Pi() != probe.Pi() {
			t.Fatalf("π diverged: precheck %d, probe %d", pre.Pi(), probe.Pi())
		}
		for name, s := range map[string]*Session{"precheck": pre, "probe": probe} {
			nl, err := s.NumLambda()
			if err != nil {
				t.Fatalf("%s NumLambda: %v", name, err)
			}
			if nl > w {
				t.Fatalf("%s session over budget: λ=%d > w=%d", name, nl, w)
			}
			if err := s.Verify(); err != nil {
				t.Fatalf("%s session inconsistent: %v", name, err)
			}
		}
	})
}
