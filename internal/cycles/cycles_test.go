package cycles

import (
	"testing"

	"wavedag/internal/digraph"
)

// fig3 builds the DAG of Figure 3 of the paper: vertices a,b,c,d,e with
// arcs a->b, b->c, c->d, d->e and the chord b->d. The triangle b,c,d is an
// internal cycle (b has predecessor a, d has successor e).
func fig3() *digraph.Digraph {
	g := digraph.New(5) // 0=a 1=b 2=c 3=d 4=e
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	g.MustAddArc(2, 3)
	g.MustAddArc(3, 4)
	g.MustAddArc(1, 3)
	return g
}

// diamond: 0->1, 0->2, 1->3, 2->3. Its only cycle passes through the
// source 0 and the sink 3, so it is NOT internal.
func diamond() *digraph.Digraph {
	g := digraph.New(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(0, 2)
	g.MustAddArc(1, 3)
	g.MustAddArc(2, 3)
	return g
}

func TestInternalVertices(t *testing.T) {
	g := fig3()
	got := InternalVertices(g)
	want := []digraph.Vertex{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("internal vertices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("internal vertices = %v, want %v", got, want)
		}
	}
	if len(InternalVertices(diamond())) != 2 {
		t.Fatalf("diamond internal vertices = %v", InternalVertices(diamond()))
	}
}

func TestHasInternalCycleFig3(t *testing.T) {
	if !HasInternalCycle(fig3()) {
		t.Fatal("Figure 3 graph must have an internal cycle")
	}
	if IndependentCycleCount(fig3()) != 1 {
		t.Fatalf("Figure 3 cycle count = %d, want 1", IndependentCycleCount(fig3()))
	}
}

func TestDiamondHasNoInternalCycle(t *testing.T) {
	if HasInternalCycle(diamond()) {
		t.Fatal("diamond cycle passes through source and sink; not internal")
	}
	if IndependentCycleCount(diamond()) != 0 {
		t.Fatal("diamond count must be 0")
	}
	if _, ok := FindInternalCycle(diamond()); ok {
		t.Fatal("FindInternalCycle found a cycle in the diamond")
	}
}

func TestPathGraphNoInternalCycle(t *testing.T) {
	g := digraph.New(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	g.MustAddArc(2, 3)
	if HasInternalCycle(g) {
		t.Fatal("path graph has no cycle at all")
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	if HasInternalCycle(digraph.New(0)) {
		t.Fatal("empty graph")
	}
	if HasInternalCycle(digraph.New(5)) {
		t.Fatal("arc-less graph")
	}
	g := digraph.New(2)
	g.MustAddArc(0, 1)
	if HasInternalCycle(g) {
		t.Fatal("single arc")
	}
}

func TestFindInternalCycleFig3(t *testing.T) {
	g := fig3()
	c, ok := FindInternalCycle(g)
	if !ok {
		t.Fatal("no cycle found in Figure 3 graph")
	}
	if err := c.Validate(g); err != nil {
		t.Fatalf("cycle invalid: %v", err)
	}
	if len(c.Steps) != 3 {
		t.Fatalf("cycle length = %d, want 3 (the b,c,d triangle)", len(c.Steps))
	}
	walk := c.Vertices(g)
	if walk[0] != walk[len(walk)-1] {
		t.Fatalf("walk not closed: %v", walk)
	}
	onCycle := map[digraph.Vertex]bool{}
	for _, v := range walk[:len(walk)-1] {
		onCycle[v] = true
	}
	if !onCycle[1] || !onCycle[2] || !onCycle[3] || onCycle[0] || onCycle[4] {
		t.Fatalf("cycle vertices = %v, want {1,2,3}", walk)
	}
}

// theorem2Cycle builds the internal cycle of Figure 5 with parameter k:
// arcs b_i->c_i and b_i->c_{i-1 mod k}, plus a_i->b_i and c_i->d_i.
func theorem2Cycle(k int) *digraph.Digraph {
	g := digraph.New(4 * k) // a_i, b_i, c_i, d_i at offsets 0,k,2k,3k
	a := func(i int) digraph.Vertex { return digraph.Vertex(i) }
	b := func(i int) digraph.Vertex { return digraph.Vertex(k + i) }
	c := func(i int) digraph.Vertex { return digraph.Vertex(2*k + i) }
	d := func(i int) digraph.Vertex { return digraph.Vertex(3*k + i) }
	for i := 0; i < k; i++ {
		g.MustAddArc(a(i), b(i))
		g.MustAddArc(b(i), c(i))
		g.MustAddArc(b(i), c((i+k-1)%k))
		g.MustAddArc(c(i), d(i))
	}
	return g
}

func TestTheorem2CycleDetection(t *testing.T) {
	for k := 2; k <= 6; k++ {
		g := theorem2Cycle(k)
		if !HasInternalCycle(g) {
			t.Fatalf("k=%d: no internal cycle detected", k)
		}
		if got := IndependentCycleCount(g); got != 1 {
			t.Fatalf("k=%d: cycle count = %d, want 1", k, got)
		}
		c, ok := FindInternalCycle(g)
		if !ok {
			t.Fatalf("k=%d: FindInternalCycle failed", k)
		}
		if err := c.Validate(g); err != nil {
			t.Fatalf("k=%d: invalid cycle: %v", k, err)
		}
		if len(c.Steps) != 2*k {
			t.Fatalf("k=%d: cycle length %d, want %d", k, len(c.Steps), 2*k)
		}
	}
}

func TestMultipleIndependentCycles(t *testing.T) {
	// Two disjoint Figure-3 gadgets glued into one graph.
	g := digraph.New(10)
	add := func(off int) {
		g.MustAddArc(digraph.Vertex(off+0), digraph.Vertex(off+1))
		g.MustAddArc(digraph.Vertex(off+1), digraph.Vertex(off+2))
		g.MustAddArc(digraph.Vertex(off+2), digraph.Vertex(off+3))
		g.MustAddArc(digraph.Vertex(off+3), digraph.Vertex(off+4))
		g.MustAddArc(digraph.Vertex(off+1), digraph.Vertex(off+3))
	}
	add(0)
	add(5)
	if got := IndependentCycleCount(g); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	c, ok := FindInternalCycle(g)
	if !ok {
		t.Fatal("no cycle found")
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// A K4-like DAG where every cycle is internal after padding each vertex
// with a predecessor and successor.
func TestDenseInternalCycles(t *testing.T) {
	// Core: 0->1, 0->2, 1->3, 2->3, 0->3 gives cyclomatic number 2 once all
	// of 0..3 are internal; add feeder arcs s->0 and 3->t plus arcs making
	// 1,2 internal (they already are: in from 0, out to 3).
	g := digraph.New(6) // 4=s, 5=t
	g.MustAddArc(4, 0)
	g.MustAddArc(0, 1)
	g.MustAddArc(0, 2)
	g.MustAddArc(1, 3)
	g.MustAddArc(2, 3)
	g.MustAddArc(0, 3)
	g.MustAddArc(3, 5)
	if got := IndependentCycleCount(g); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if !HasInternalCycle(g) {
		t.Fatal("cycles not detected")
	}
}

func TestParallelArcsFormInternalCycle(t *testing.T) {
	// Two parallel arcs between internal vertices form a cycle of the
	// underlying multigraph.
	g := digraph.New(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	g.MustAddArc(1, 2)
	g.MustAddArc(2, 3)
	if !HasInternalCycle(g) {
		t.Fatal("parallel-arc cycle missed")
	}
	c, ok := FindInternalCycle(g)
	if !ok {
		t.Fatal("FindInternalCycle missed parallel-arc cycle")
	}
	if len(c.Steps) != 2 {
		t.Fatalf("cycle length = %d, want 2", len(c.Steps))
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestCycleValidateRejectsBadCycles(t *testing.T) {
	g := fig3()
	if err := (&Cycle{}).Validate(g); err == nil {
		t.Fatal("empty cycle validated")
	}
	// A single-arc "cycle" is not closed.
	one := &Cycle{Steps: []Step{{Arc: 0, Forward: true}}}
	if err := one.Validate(g); err == nil {
		t.Fatal("single-step cycle validated")
	}
	// A walk through the source is rejected: a->b then back along a->b.
	srcWalk := &Cycle{Steps: []Step{{Arc: 0, Forward: true}, {Arc: 0, Forward: false}}}
	if err := srcWalk.Validate(g); err == nil {
		t.Fatal("walk with repeated arc through a source validated")
	}
}

func TestCycleArcIDs(t *testing.T) {
	g := fig3()
	c, _ := FindInternalCycle(g)
	ids := c.ArcIDs()
	if len(ids) != len(c.Steps) {
		t.Fatalf("ArcIDs len = %d", len(ids))
	}
	for i, s := range c.Steps {
		if ids[i] != s.Arc {
			t.Fatal("ArcIDs disagrees with Steps")
		}
	}
}
