// Package cycles detects internal cycles of a DAG — the structural
// obstruction identified by Bermond & Cosnard (IPDPS 2007).
//
// An oriented cycle of a DAG is a cycle of the underlying undirected
// multigraph (it necessarily alternates direction, since directed cycles
// are excluded). An internal cycle is an oriented cycle all of whose
// vertices have in-degree > 0 and out-degree > 0 in G, i.e. the cycle
// avoids every source and every sink of G.
//
// Detection reduces to acyclicity of an undirected graph: every internal
// cycle lives inside the sub-digraph induced by the internal vertices
// V' = {v : indeg(v) > 0 and outdeg(v) > 0}, and conversely any cycle of
// the underlying undirected multigraph of G[V'] is internal. Hence
//
//   - G has an internal cycle  ⇔  underlying(G[V']) has a cycle;
//   - the number of independent internal cycles is the cyclomatic number
//     m' − n' + c' of underlying(G[V']).
package cycles

import (
	"fmt"

	"wavedag/internal/digraph"
)

// InternalVertices returns the vertices of g with positive in-degree and
// positive out-degree, in increasing order.
func InternalVertices(g *digraph.Digraph) []digraph.Vertex {
	var vs []digraph.Vertex
	for v := 0; v < g.NumVertices(); v++ {
		u := digraph.Vertex(v)
		if g.InDegree(u) > 0 && g.OutDegree(u) > 0 {
			vs = append(vs, u)
		}
	}
	return vs
}

// internalSubgraph returns the sub-digraph induced on internal vertices
// plus the arc mapping back to g.
func internalSubgraph(g *digraph.Digraph) (*digraph.Digraph, []digraph.Vertex, []digraph.ArcID) {
	sub, n2o, a2o, err := g.InducedSubgraph(InternalVertices(g))
	if err != nil {
		// InternalVertices never yields duplicates or bad ids.
		panic(fmt.Sprintf("cycles: induced subgraph failed: %v", err))
	}
	return sub, n2o, a2o
}

// HasInternalCycle reports whether the DAG g contains an internal cycle.
func HasInternalCycle(g *digraph.Digraph) bool {
	return IndependentCycleCount(g) > 0
}

// IndependentCycleCount returns the cyclomatic number (first Betti number)
// of the underlying undirected multigraph of the internal sub-digraph:
// the number of independent internal cycles. Theorem 6 of the paper
// applies to UPP-DAGs whose count is exactly 1.
//
// The count (arcs - vertices + components, all restricted to internal
// vertices) is computed in place — this sits on the dispatch path of
// every coloring call, so it must not build the induced subgraph.
func IndependentCycleCount(g *digraph.Digraph) int {
	n := g.NumVertices()
	// parent[v] = union-find parent for internal v, -1 for non-internal.
	parent := make([]int, n)
	m := 0
	for v := 0; v < n; v++ {
		u := digraph.Vertex(v)
		if g.InDegree(u) > 0 && g.OutDegree(u) > 0 {
			parent[v] = v
			m++
		} else {
			parent[v] = -1
		}
	}
	if m == 0 {
		return 0
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := m
	arcs := 0
	for a := 0; a < g.NumArcs(); a++ {
		arc := g.Arc(digraph.ArcID(a))
		if parent[arc.Tail] < 0 || parent[arc.Head] < 0 {
			continue
		}
		arcs++
		ra, rb := find(int(arc.Tail)), find(int(arc.Head))
		if ra != rb {
			parent[ra] = rb
			comps--
		}
	}
	return arcs - m + comps
}

// Step is one arc of an oriented cycle, with its direction of traversal:
// Forward means the arc is traversed from Tail to Head along the cycle
// walk, reversed otherwise.
type Step struct {
	Arc     digraph.ArcID
	Forward bool
}

// Cycle is an oriented cycle of g given as a closed walk of steps in the
// underlying multigraph. Vertices(g) reconstructs the vertex sequence.
type Cycle struct {
	Steps []Step
}

// Vertices returns the closed vertex walk v0, v1, ..., vk = v0 of the
// cycle in g (length len(Steps)+1, first equals last).
func (c *Cycle) Vertices(g *digraph.Digraph) []digraph.Vertex {
	if len(c.Steps) == 0 {
		return nil
	}
	walk := make([]digraph.Vertex, 0, len(c.Steps)+1)
	first := c.Steps[0]
	var cur digraph.Vertex
	if first.Forward {
		cur = g.Arc(first.Arc).Tail
	} else {
		cur = g.Arc(first.Arc).Head
	}
	walk = append(walk, cur)
	for _, s := range c.Steps {
		a := g.Arc(s.Arc)
		if s.Forward {
			if a.Tail != cur {
				panic("cycles: inconsistent cycle walk")
			}
			cur = a.Head
		} else {
			if a.Head != cur {
				panic("cycles: inconsistent cycle walk")
			}
			cur = a.Tail
		}
		walk = append(walk, cur)
	}
	return walk
}

// ArcIDs returns the arcs of the cycle in walk order.
func (c *Cycle) ArcIDs() []digraph.ArcID {
	ids := make([]digraph.ArcID, len(c.Steps))
	for i, s := range c.Steps {
		ids[i] = s.Arc
	}
	return ids
}

// Validate checks that the cycle is a closed walk of g visiting every
// vertex at most once, of length at least 2, and that every vertex on it
// is internal in g.
func (c *Cycle) Validate(g *digraph.Digraph) error {
	if len(c.Steps) < 2 {
		return fmt.Errorf("cycles: cycle must have at least 2 arcs, got %d", len(c.Steps))
	}
	walk := c.Vertices(g)
	if walk[0] != walk[len(walk)-1] {
		return fmt.Errorf("cycles: walk not closed: %v", walk)
	}
	seen := make(map[digraph.Vertex]bool)
	for _, v := range walk[:len(walk)-1] {
		if seen[v] {
			return fmt.Errorf("cycles: vertex %d repeated on cycle", v)
		}
		seen[v] = true
		if g.InDegree(v) == 0 || g.OutDegree(v) == 0 {
			return fmt.Errorf("cycles: vertex %d on cycle is a source or sink", v)
		}
	}
	seenArc := make(map[digraph.ArcID]bool)
	for _, s := range c.Steps {
		if seenArc[s.Arc] {
			return fmt.Errorf("cycles: arc %d repeated on cycle", s.Arc)
		}
		seenArc[s.Arc] = true
	}
	return nil
}

// FindInternalCycle returns an internal cycle of g, or ok=false when none
// exists. The cycle is found by a DFS of the underlying multigraph of the
// internal sub-digraph; the returned steps reference arcs of g.
func FindInternalCycle(g *digraph.Digraph) (*Cycle, bool) {
	sub, _, a2o := internalSubgraph(g)
	n := sub.NumVertices()
	if n == 0 {
		return nil, false
	}
	// Undirected incidence: for each vertex, (neighbor, local arc id, forward?).
	type edge struct {
		to      digraph.Vertex
		arc     digraph.ArcID // arc id in sub
		forward bool
	}
	adj := make([][]edge, n)
	for _, a := range sub.Arcs() {
		adj[a.Tail] = append(adj[a.Tail], edge{to: a.Head, arc: a.ID, forward: true})
		adj[a.Head] = append(adj[a.Head], edge{to: a.Tail, arc: a.ID, forward: false})
	}
	// Iterative DFS, tracking the tree parent edge to detect back edges
	// (parallel arcs count as cycles of length 2 and are caught because we
	// compare arc ids, not endpoints).
	state := make([]int, n) // 0 unvisited, 1 on stack, 2 done
	parentEdge := make([]edge, n)
	parentOf := make([]digraph.Vertex, n)
	for start := 0; start < n; start++ {
		if state[start] != 0 {
			continue
		}
		type frame struct {
			v    digraph.Vertex
			next int
		}
		stack := []frame{{digraph.Vertex(start), 0}}
		state[start] = 1
		parentOf[start] = -1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next >= len(adj[f.v]) {
				state[f.v] = 2
				stack = stack[:len(stack)-1]
				continue
			}
			e := adj[f.v][f.next]
			f.next++
			// Skip the tree edge to the parent (same arc, not merely the
			// same endpoint — parallel arcs must still be seen).
			if parentOf[f.v] >= 0 && e.arc == parentEdge[f.v].arc {
				continue
			}
			switch state[e.to] {
			case 0:
				state[e.to] = 1
				parentOf[e.to] = f.v
				parentEdge[e.to] = e
				stack = append(stack, frame{e.to, 0})
			case 1:
				// Back edge f.v -> e.to closes a cycle: the closed walk is
				// the tree path e.to -> ... -> f.v followed by the back
				// edge. Tree edges were recorded as traversed parent ->
				// child, which is exactly the direction of the downward
				// walk, so their Forward flags carry over unchanged.
				var down []Step
				for v := f.v; v != e.to; v = parentOf[v] {
					pe := parentEdge[v]
					down = append(down, Step{Arc: a2o[pe.arc], Forward: pe.forward})
				}
				for i, j := 0, len(down)-1; i < j; i, j = i+1, j-1 {
					down[i], down[j] = down[j], down[i]
				}
				steps := append(down, Step{Arc: a2o[e.arc], Forward: e.forward})
				return &Cycle{Steps: steps}, true
			}
		}
	}
	return nil, false
}
