// Ablation benchmarks for the design choices called out in DESIGN.md:
//
//   - A1: Theorem 6's constructive coloring vs. the DSATUR heuristic on
//     the Theorem 7 tightness series — the heuristic exceeds the ⌈4π/3⌉
//     bound (ratio drifts to 3/2), the construction never does;
//   - A2: the bundle-aware simple-cycle decomposition (deviation D1) vs.
//     the cost of the exact class-level repair it avoids — measured as
//     the end-to-end cost of Theorem 6 on replicated vs. structurally
//     equivalent non-replicated workloads;
//   - A3: exact chromatic number vs. Theorem 1 on growing instances —
//     the polynomial construction keeps a bounded per-path cost while
//     the exact solver is super-polynomial on adversarial shapes.
package wavedag_test

import (
	"fmt"
	"testing"

	"wavedag/internal/conflict"
	"wavedag/internal/core"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/gen"
)

// A1: heuristic vs. construction on the tightness series. The benchmark
// reports both color counts via metrics.
func BenchmarkAblationTheorem6VsDSATUR(b *testing.B) {
	g, fam := gen.Havet()
	for _, h := range []int{3, 6, 9} {
		rep := fam.Replicate(h)
		bound := (8*h + 2) / 3
		b.Run(fmt.Sprintf("construction/h=%d", h), func(b *testing.B) {
			b.ReportAllocs()
			var colors int
			for i := 0; i < b.N; i++ {
				res, err := core.ColorOneInternalCycleUPP(g, rep)
				if err != nil {
					b.Fatal(err)
				}
				colors = res.NumColors
				if colors > bound {
					b.Fatalf("construction exceeded bound: %d > %d", colors, bound)
				}
			}
			b.ReportMetric(float64(colors), "colors")
			b.ReportMetric(float64(bound), "bound")
		})
		b.Run(fmt.Sprintf("dsatur/h=%d", h), func(b *testing.B) {
			b.ReportAllocs()
			cg := conflict.FromFamily(g, rep)
			var colors int
			for i := 0; i < b.N; i++ {
				colors = conflict.CountColors(cg.DSATURColoring())
			}
			// DSATUR typically lands on 3h = 1.5π here — above the bound;
			// report rather than fail: that gap is the point of the ablation.
			b.ReportMetric(float64(colors), "colors")
			b.ReportMetric(float64(bound), "bound")
		})
	}
}

// A2: replicated workloads exercise the bundle machinery and (rarely)
// the class-level repair; an equal-size workload of distinct dipaths on
// the same graph does not. Comparing ns/op isolates the deviation-D1
// overhead.
func BenchmarkAblationBundleOverhead(b *testing.B) {
	g, fam := gen.Havet()
	all, err := gen.AllSourceSinkFamily(g)
	if err != nil {
		b.Fatal(err)
	}
	replicated := fam.Replicate(5) // 40 dipaths, heavy bundles
	var distinct = all             // 44 distinct dipaths, no bundles
	b.Run("replicated-40", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.ColorOneInternalCycleUPP(g, replicated); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("distinct-44", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.ColorOneInternalCycleUPP(g, distinct); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// A3: Theorem 1 vs. exact χ as the pathological staircase grows: both
// agree on the answer on internal-cycle-free instances, but only the
// construction stays polynomial on adversarial conflict graphs. (The
// staircase itself has internal cycles, so the comparison instance here
// is the random internal-cycle-free family; the staircase appears only
// for the exact solver's worst case.)
func BenchmarkAblationExactBlowup(b *testing.B) {
	for _, k := range []int{8, 12, 16} {
		g, fam, err := gen.Fig1Staircase(k)
		if err != nil {
			b.Fatal(err)
		}
		cg := conflict.FromFamily(g, fam)
		b.Run(fmt.Sprintf("exact-chi/K%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if chi := cg.ChromaticNumber(); chi != k {
					b.Fatalf("χ=%d", chi)
				}
			}
		})
	}
	for _, n := range []int{60, 120, 240} {
		g, err := gen.RandomNoInternalCycleDAG(n, 4, 4, 0.2, int64(n))
		if err != nil {
			b.Fatal(err)
		}
		fam := gen.RandomWalkFamily(g, n*4, 8, int64(n)+1)
		b.Run(fmt.Sprintf("theorem1/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.ColorNoInternalCycle(g, fam); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// A4 (PR 4): the trusted path translation vs. the validating one on the
// sharded engine's merge path. The engine's view-to-parent translations
// are chain-preserving by construction, so FromArcs' per-path
// revalidation is pure overhead; this measures exactly that delta on an
// AllToAll-scale family.
func BenchmarkAblationTrustedTranslation(b *testing.B) {
	g, err := gen.RandomNoInternalCycleDAG(64, 6, 6, 0.2, 71)
	if err != nil {
		b.Fatal(err)
	}
	views, _, _ := g.PartitionComponents()
	view := views[0]
	for _, v := range views {
		if v.G.NumArcs() > view.G.NumArcs() {
			view = v
		}
	}
	fam := gen.RandomWalkFamily(view.G, 2000, 8, 73)
	var arcSeqs [][]digraph.ArcID
	for _, p := range fam {
		if p.NumArcs() == 0 {
			continue
		}
		arcs := make([]digraph.ArcID, p.NumArcs())
		for i, a := range p.Arcs() {
			arcs[i] = view.ToGlobalArc[a]
		}
		arcSeqs = append(arcSeqs, arcs)
	}
	b.Run("from-arcs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, arcs := range arcSeqs {
				if _, err := dipath.FromArcs(g, arcs...); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("trusted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, arcs := range arcSeqs {
				if p := dipath.FromArcsTrusted(g, arcs...); p.NumArcs() != len(arcs) {
					b.Fatal("bad translation")
				}
			}
		}
	})
}
