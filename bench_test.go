// Benchmarks regenerating every figure/theorem of the paper (experiment
// ids E1–E12 from DESIGN.md). Each benchmark both measures the cost of
// the relevant pipeline and asserts the paper-predicted outcome, so
// `go test -bench=. -benchmem` doubles as the reproduction run.
package wavedag_test

import (
	"errors"
	"fmt"
	"testing"

	"wavedag"
	"wavedag/internal/check"
	"wavedag/internal/conflict"
	"wavedag/internal/core"
	"wavedag/internal/cycles"
	"wavedag/internal/gen"
	"wavedag/internal/load"
	"wavedag/internal/route"
	"wavedag/internal/upp"
	"wavedag/internal/wdm"
)

// E1 / Figure 1: the pathological staircase has π = 2 and w = k.
func BenchmarkFig1Pathological(b *testing.B) {
	for _, k := range []int{4, 8, 12} {
		g, fam, err := gen.Fig1Staircase(k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cg := conflict.FromFamily(g, fam)
				w := cg.ChromaticNumber()
				if load.Pi(g, fam) != 2 || w != k {
					b.Fatalf("π=2,w=%d expected, got w=%d", k, w)
				}
			}
		})
	}
}

// E2 / Figure 3: one internal cycle, C5 conflict graph, π = 2, w = 3.
func BenchmarkFig3InternalCycle(b *testing.B) {
	b.ReportAllocs()
	g, fam := gen.Fig3()
	for i := 0; i < b.N; i++ {
		cg := conflict.FromFamily(g, fam)
		if !cg.IsCycle() || cg.ChromaticNumber() != 3 || load.Pi(g, fam) != 2 {
			b.Fatal("Figure 3 shape lost")
		}
	}
}

// E3 / Theorem 1: w = π via the constructive algorithm on random
// internal-cycle-free instances of growing size.
func BenchmarkTheorem1(b *testing.B) {
	for _, cfg := range []struct{ nInt, paths int }{
		{15, 40}, {60, 250}, {120, 600}, {240, 1500},
	} {
		g, err := gen.RandomNoInternalCycleDAG(cfg.nInt, 4, 4, 0.2, int64(cfg.nInt))
		if err != nil {
			b.Fatal(err)
		}
		fam := gen.RandomWalkFamily(g, cfg.paths, 8, int64(cfg.paths))
		b.Run(fmt.Sprintf("n=%d/paths=%d", cfg.nInt, cfg.paths), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.ColorNoInternalCycle(g, fam)
				if err != nil {
					b.Fatal(err)
				}
				if err := check.WavelengthsWithinLoad(g, fam, res.Colors); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E4 / Theorem 2 (Figure 5): gadget with conflict graph C_{2k+1}.
func BenchmarkTheorem2(b *testing.B) {
	for _, k := range []int{3, 6, 12} {
		g, fam, err := gen.InternalCycleGadget(k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cg := conflict.FromFamily(g, fam)
				if !cg.IsCycle() || cg.N() != 2*k+1 || cg.ChromaticNumber() != 3 {
					b.Fatal("gadget shape lost")
				}
			}
		})
	}
}

// E5 / Property 3: load equals conflict clique number on UPP-DAGs.
func BenchmarkUPPClique(b *testing.B) {
	b.ReportAllocs()
	g := gen.RandomUPPDAG(25, 120, 5)
	fam, err := gen.AllSourceSinkFamily(g)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pi := load.Pi(g, fam)
		om := conflict.FromFamily(g, fam).CliqueNumber()
		if pi != om {
			b.Fatalf("π=%d ω=%d", pi, om)
		}
	}
}

// E6 / Corollary 5: no induced K_{2,3} in UPP conflict graphs.
func BenchmarkUPPNoK23(b *testing.B) {
	b.ReportAllocs()
	g := gen.RandomUPPDAG(25, 120, 6)
	fam, err := gen.AllSourceSinkFamily(g)
	if err != nil {
		b.Fatal(err)
	}
	cg := conflict.FromFamily(g, fam)
	for i := 0; i < b.N; i++ {
		if _, _, found := cg.FindK23(); found {
			b.Fatal("induced K23 found")
		}
	}
}

// E7 / Theorem 6: constructive ⌈4π/3⌉ coloring on one-cycle UPP-DAGs.
func BenchmarkTheorem6(b *testing.B) {
	gH, famH := gen.Havet()
	workloads := []struct {
		name string
		fam  wavedag.Family
	}{
		{"havet-x3", famH.Replicate(3)},
		{"havet-x8", famH.Replicate(8)},
	}
	gg, _, err := gen.InternalCycleGadget(4)
	if err != nil {
		b.Fatal(err)
	}
	all, err := gen.AllSourceSinkFamily(gg)
	if err != nil {
		b.Fatal(err)
	}
	for _, wl := range workloads {
		b.Run(wl.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.ColorOneInternalCycleUPP(gH, wl.fam)
				if err != nil {
					b.Fatal(err)
				}
				if err := check.WavelengthsWithinBound(gH, wl.fam, res.Colors, 4, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("gadget-allpairs-x4", func(b *testing.B) {
		b.ReportAllocs()
		fam := all.Replicate(4)
		for i := 0; i < b.N; i++ {
			res, err := core.ColorOneInternalCycleUPP(gg, fam)
			if err != nil {
				b.Fatal(err)
			}
			if err := check.WavelengthsWithinBound(gg, fam, res.Colors, 4, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E8 / Theorem 7 (Figure 9): the replicated Havet instance reaches the
// ⌈4π/3⌉ bound exactly: w = ⌈8h/3⌉.
func BenchmarkTheorem7(b *testing.B) {
	g, fam := gen.Havet()
	for _, h := range []int{3, 6, 12} {
		rep := fam.Replicate(h)
		want := (8*h + 2) / 3
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.ColorOneInternalCycleUPP(g, rep)
				if err != nil {
					b.Fatal(err)
				}
				if res.NumColors != want {
					b.Fatalf("w=%d want %d", res.NumColors, want)
				}
			}
		})
	}
}

// E9: the C5 gadget replicated h times has χ = ⌈5h/2⌉ (ratio 5/4).
func BenchmarkC5Replicated(b *testing.B) {
	g, fam, err := gen.InternalCycleGadget(2)
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range []int{2, 3} {
		rep := fam.Replicate(h)
		want := (5*h + 1) / 2
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if chi := conflict.FromFamily(g, rep).ChromaticNumber(); chi != want {
					b.Fatalf("χ=%d want %d", chi, want)
				}
			}
		})
	}
}

// E10: disjoint unions with C independent internal cycles.
func BenchmarkMultiCycle(b *testing.B) {
	gh, fh := gen.Havet()
	for _, c := range []int{2, 4} {
		parts := make([]gen.Instance, c)
		for i := range parts {
			parts[i] = gen.Instance{G: gh, F: fh}
		}
		g, fam := gen.DisjointUnion(parts...)
		b.Run(fmt.Sprintf("C=%d", c), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if cycles.IndependentCycleCount(g) != c {
					b.Fatal("cycle count wrong")
				}
				cg := conflict.FromFamily(g, fam)
				if w := conflict.CountColors(cg.DSATURColoring()); w < 3 {
					b.Fatalf("w=%d", w)
				}
			}
		})
	}
}

// E11: rooted trees (arborescences): w = π on all-pairs workloads.
func BenchmarkRootedTree(b *testing.B) {
	for _, n := range []int{30, 120} {
		g := gen.RandomArborescence(n, int64(n))
		r, err := upp.NewRouter(g)
		if err != nil {
			b.Fatal(err)
		}
		fam := r.AllPairsFamily()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.ColorNoInternalCycle(g, fam)
				if err != nil {
					b.Fatal(err)
				}
				if err := check.WavelengthsWithinLoad(g, fam, res.Colors); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E12: coloring algorithm shoot-out on a fixed instance.
func BenchmarkColoringAlgorithms(b *testing.B) {
	g, err := gen.RandomNoInternalCycleDAG(40, 4, 4, 0.25, 3)
	if err != nil {
		b.Fatal(err)
	}
	fam := gen.RandomWalkFamily(g, 150, 7, 4)
	cg := conflict.FromFamily(g, fam)
	b.Run("theorem1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.ColorNoInternalCycle(g, fam); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cg.GreedyColoring(nil)
		}
	})
	b.Run("dsatur", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cg.DSATURColoring()
		}
	})
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cg.ChromaticNumber()
		}
	})
}

// Full RWA pipeline benchmark (routing + assignment) on a WDM network.
func BenchmarkRWAPipeline(b *testing.B) {
	topo, err := gen.RandomNoInternalCycleDAG(40, 6, 6, 0.2, 12)
	if err != nil {
		b.Fatal(err)
	}
	net := &wdm.Network{Topology: topo, Wavelengths: 32}
	reqs := route.AllToAll(topo)
	if len(reqs) > 200 {
		reqs = reqs[:200]
	}
	for _, policy := range []wdm.RoutingPolicy{wdm.RouteShortest, wdm.RouteMinLoad} {
		b.Run(policy.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := net.Provision(reqs, policy); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Dynamic provisioning engine: steady-state churn (one teardown + one
// arrival per iteration) on a session, against the one-shot pipeline's
// per-event rebuild measured by cmd/bench's churn/scratch entries.
func BenchmarkSessionChurn(b *testing.B) {
	topo, err := gen.RandomNoInternalCycleDAG(40, 6, 6, 0.2, 12)
	if err != nil {
		b.Fatal(err)
	}
	net := &wdm.Network{Topology: topo}
	pool := route.AllToAll(topo)
	s, err := net.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	const liveTarget = 200
	ids := make([]wavedag.SessionID, 0, liveTarget)
	for i := 0; len(ids) < liveTarget; i++ {
		id, err := s.Add(pool[(i*31)%len(pool)])
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := (i * 17) % len(ids)
		if err := s.Remove(ids[k]); err != nil {
			b.Fatal(err)
		}
		id, err := s.Add(pool[(i*13)%len(pool)])
		if err != nil {
			b.Fatal(err)
		}
		ids[k] = id
	}
	b.StopTimer()
	if err := s.Verify(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShardedChurn measures the concurrent engine's per-event cost
// (batched remove+add pairs through ApplyBatch) on a multi-component
// topology, through the public API. Run with -cpu=1,4 to see the
// worker-count axis; cmd/bench's churn/sharded entries are the
// calibrated snapshot form.
func BenchmarkShardedChurn(b *testing.B) {
	parts := make([]gen.Instance, 4)
	for i := range parts {
		g, err := gen.RandomNoInternalCycleDAG(40, 8, 8, 0.2, int64(21+i))
		if err != nil {
			b.Fatal(err)
		}
		parts[i] = gen.Instance{G: g}
	}
	topo, _ := gen.DisjointUnion(parts...)
	net := &wavedag.Network{Topology: topo}
	eng, err := net.NewShardedEngine()
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	pool := wavedag.NewRouter(topo).AllToAll()
	const liveTarget = 400
	ids := make([]wavedag.ShardedID, 0, liveTarget)
	for i := 0; len(ids) < liveTarget; i++ {
		id, err := eng.Add(pool[(i*31)%len(pool)])
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	const batch = 64
	ops := make([]wavedag.BatchOp, 0, batch)
	slots := make([]int, 0, batch/2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := (i * 17) % len(ids)
		ops = append(ops, wavedag.RemoveOp(ids[k]), wavedag.AddOp(pool[(i*13)%len(pool)]))
		slots = append(slots, k)
		if len(ops) == batch || i == b.N-1 {
			results := eng.ApplyBatch(ops)
			for j, res := range results {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				if j%2 == 1 {
					ids[slots[j/2]] = res.ID
				}
			}
			ops, slots = ops[:0], slots[:0]
		}
	}
	b.StopTimer()
	if err := eng.Verify(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSubshardChurn measures the two-level engine's per-event cost
// on a giant glued component — one weakly connected component that
// PartitionComponents cannot split — under a 90%-region-local trace,
// with sub-sharding off (the whole component serialises onto one
// session) and on (region lanes fan out, cross-region traffic rides the
// overlay lane). Run with -cpu=1,4 for the worker axis; cmd/bench's
// churn/sharded/giant-* entries are the calibrated snapshot form.
func BenchmarkSubshardChurn(b *testing.B) {
	parts := make([]*wavedag.Graph, 4)
	for i := range parts {
		g, err := gen.RandomNoInternalCycleDAG(24, 4, 4, 0.2, int64(91+i))
		if err != nil {
			b.Fatal(err)
		}
		parts[i] = g
	}
	topo, partVerts, err := gen.GlueChain(parts...)
	if err != nil {
		b.Fatal(err)
	}
	pairs := gen.LocalityRequestPool(topo, partVerts, 0.9, 2000, 97)
	pool := make([]wavedag.Request, len(pairs))
	for i, p := range pairs {
		pool[i] = wavedag.Request{Src: p[0], Dst: p[1]}
	}
	for _, threshold := range []int{0, 16} {
		b.Run(fmt.Sprintf("subshard=%d", threshold), func(b *testing.B) {
			net := &wavedag.Network{Topology: topo}
			eng, err := net.NewShardedEngine(wavedag.WithSubshardThreshold(threshold))
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			const liveTarget = 300
			ids := make([]wavedag.ShardedID, 0, liveTarget)
			for i := 0; len(ids) < liveTarget; i++ {
				id, err := eng.Add(pool[(i*31)%len(pool)])
				if err != nil {
					b.Fatal(err)
				}
				ids = append(ids, id)
			}
			const batch = 32
			ops := make([]wavedag.BatchOp, 0, batch)
			slots := make([]int, 0, batch/2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := (i * 17) % len(ids)
				ops = append(ops, wavedag.RemoveOp(ids[k]), wavedag.AddOp(pool[(i*13)%len(pool)]))
				slots = append(slots, k)
				if len(ops) == batch || i == b.N-1 {
					for j, res := range eng.ApplyBatch(ops) {
						if res.Err != nil {
							b.Fatal(res.Err)
						}
						if j%2 == 1 {
							ids[slots[j/2]] = res.ID
						}
					}
					ops, slots = ops[:0], slots[:0]
				}
			}
			b.StopTimer()
			if err := eng.Verify(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAdmissionChurn measures the budgeted engines on the
// blocking-probability workload: a hotspot-concentrated overload trace
// against a finite wavelength budget — the plain session, the budgeted
// sharded engine (batched through the pooled ApplyBatchInto), and the
// rejection-cost pair (Theorem-1 precheck vs the color-and-rollback
// probe it replaces). Run with -cpu=1,4 for the worker axis;
// cmd/bench's admission/* entries are the calibrated snapshot form.
func BenchmarkAdmissionChurn(b *testing.B) {
	topo, err := gen.RandomNoInternalCycleDAG(40, 6, 6, 0.2, 12)
	if err != nil {
		b.Fatal(err)
	}
	pairs := gen.HotspotRequestPool(topo, 10, 0.7, 2000, 17)
	pool := make([]wavedag.Request, len(pairs))
	for i, p := range pairs {
		pool[i] = wavedag.Request{Src: p[0], Dst: p[1]}
	}
	const budget = 6

	b.Run("session", func(b *testing.B) {
		net := &wavedag.Network{Topology: topo}
		s, err := net.NewSession(wavedag.WithWavelengthBudget(budget))
		if err != nil {
			b.Fatal(err)
		}
		var ids []wavedag.SessionID
		for i := 0; i < 400; i++ {
			if id, adm, err := s.TryAdd(pool[(i*31)%len(pool)]); err != nil {
				b.Fatal(err)
			} else if adm.Accepted {
				ids = append(ids, id)
				// keep a bounded working set
				if len(ids) > 150 {
					if err := s.Remove(ids[0]); err != nil {
						b.Fatal(err)
					}
					ids = ids[1:]
				}
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id, adm, err := s.TryAdd(pool[(i*13)%len(pool)])
			if err != nil {
				b.Fatal(err)
			}
			if adm.Accepted {
				ids = append(ids, id)
			}
			if len(ids) > 150 {
				if err := s.Remove(ids[0]); err != nil {
					b.Fatal(err)
				}
				ids = ids[1:]
			}
		}
		b.StopTimer()
		if err := s.Verify(); err != nil {
			b.Fatal(err)
		}
		if n, err := s.NumLambda(); err != nil || n > budget {
			b.Fatalf("λ=%d past budget (%v)", n, err)
		}
	})

	b.Run("sharded", func(b *testing.B) {
		parts := make([]gen.Instance, 4)
		for i := range parts {
			g, err := gen.RandomNoInternalCycleDAG(40, 8, 8, 0.2, int64(21+i))
			if err != nil {
				b.Fatal(err)
			}
			parts[i] = gen.Instance{G: g}
		}
		g, _ := gen.DisjointUnion(parts...)
		spairs := gen.HotspotRequestPool(g, 16, 0.7, 2000, 27)
		spool := make([]wavedag.Request, len(spairs))
		for i, p := range spairs {
			spool[i] = wavedag.Request{Src: p[0], Dst: p[1]}
		}
		net := &wavedag.Network{Topology: g}
		eng, err := net.NewShardedEngine(wavedag.WithEngineWavelengthBudget(budget))
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		const batch = 32
		ops := make([]wavedag.BatchOp, 0, batch)
		var results []wavedag.BatchResult
		var ids []wavedag.ShardedID
		flush := func() {
			results = eng.ApplyBatchInto(ops, results)
			// Every staged op is an AddOp, so a nil error always carries the
			// new id (the zero ShardedID is a legitimate one: shard 0, slot 0).
			for _, res := range results {
				switch {
				case res.Err == nil:
					ids = append(ids, res.ID)
				case !errors.Is(res.Err, wavedag.ErrBudgetExceeded):
					b.Fatal(res.Err)
				}
			}
			ops = ops[:0]
			for len(ids) > 200 {
				if err := eng.Remove(ids[0]); err != nil {
					b.Fatal(err)
				}
				ids = ids[1:]
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ops = append(ops, wavedag.AddOp(spool[(i*13)%len(spool)]))
			if len(ops) == batch || i == b.N-1 {
				flush()
			}
		}
		b.StopTimer()
		if err := eng.Verify(); err != nil {
			b.Fatal(err)
		}
		if n, err := eng.NumLambda(); err != nil || n > budget {
			b.Fatalf("λ=%d past budget (%v)", n, err)
		}
	})

	for _, probe := range []struct {
		name string
		opts []wavedag.SessionOption
	}{
		{"reject-precheck", nil},
		{"reject-rollback", []wavedag.SessionOption{wavedag.WithAdmissionRollbackProbe()}},
	} {
		b.Run(probe.name, func(b *testing.B) {
			net := &wavedag.Network{Topology: topo}
			s, err := net.NewSession(append([]wavedag.SessionOption{
				wavedag.WithWavelengthBudget(3)}, probe.opts...)...)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 600; i++ {
				if _, _, err := s.TryAdd(pool[(i*31)%len(pool)]); err != nil {
					b.Fatal(err)
				}
			}
			// A probe crossing a saturated arc: both admission paths must
			// reject it every iteration without mutating the session.
			probeReq, found := route.SaturatedRequest(topo, s.ArcLoadsInto(nil), pool, 3)
			if !found {
				b.Fatal("no saturated probe found")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, adm, err := s.TryAdd(probeReq); err != nil {
					b.Fatal(err)
				} else if adm.Accepted {
					b.Fatal("saturated probe accepted")
				}
			}
		})
	}
}

// Survivability churn: fiber cuts interleaved with budgeted churn. Each
// iteration is one churn event; a deterministic MTBF/MTTR fault
// schedule cuts and repairs arcs as the clock advances, so restoration
// storms, dark parking and revival all run inside the timed loop.
func BenchmarkSurviveChurn(b *testing.B) {
	topo, err := gen.RandomNoInternalCycleDAG(40, 6, 6, 0.2, 12)
	if err != nil {
		b.Fatal(err)
	}
	pairs := gen.HotspotRequestPool(topo, 10, 0.7, 2000, 17)
	pool := make([]wavedag.Request, len(pairs))
	for i, p := range pairs {
		pool[i] = wavedag.Request{Src: p[0], Dst: p[1]}
	}
	const budget = 8
	events, err := wavedag.NewFaultSchedule(topo, 8000, 100, 50_000, 71)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("session", func(b *testing.B) {
		net := &wavedag.Network{Topology: topo}
		s, err := net.NewSession(wavedag.WithWavelengthBudget(budget))
		if err != nil {
			b.Fatal(err)
		}
		var ids []wavedag.SessionID
		clock, next := 0.0, 0
		healAll := func() {
			for a := 0; a < topo.NumArcs(); a++ {
				if topo.ArcFailed(wavedag.ArcID(a)) {
					if _, err := s.RestoreArc(wavedag.ArcID(a)); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		step := func(i int) {
			for next < len(events) && events[next].At <= clock {
				ev := events[next]
				next++
				if ev.Restore {
					if _, err := s.RestoreArc(ev.Arc); err != nil {
						b.Fatal(err)
					}
				} else if _, err := s.FailArc(ev.Arc); err != nil {
					b.Fatal(err)
				}
			}
			if next >= len(events) {
				healAll()
				next, clock = 0, 0
			}
			clock++
			id, adm, err := s.TryAdd(pool[(i*13)%len(pool)])
			if err != nil {
				var nr route.ErrNoRoute
				if errors.As(err, &nr) {
					return // the cut disconnected the pair: blocked
				}
				b.Fatal(err)
			}
			if adm.Accepted {
				ids = append(ids, id)
			}
			if len(ids) > 150 {
				if err := s.Remove(ids[0]); err != nil {
					b.Fatal(err)
				}
				ids = ids[1:]
			}
		}
		for i := 0; i < 400; i++ {
			step(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step(i)
		}
		b.StopTimer()
		healAll()
		if err := s.Verify(); err != nil {
			b.Fatal(err)
		}
		if n, err := s.NumLambda(); err != nil || n > budget {
			b.Fatalf("λ=%d past budget (%v)", n, err)
		}
	})

	b.Run("sharded", func(b *testing.B) {
		parts := make([]gen.Instance, 4)
		for i := range parts {
			g, err := gen.RandomNoInternalCycleDAG(40, 6, 6, 0.2, int64(21+i))
			if err != nil {
				b.Fatal(err)
			}
			parts[i] = gen.Instance{G: g}
		}
		g, _ := gen.DisjointUnion(parts...)
		spairs := gen.HotspotRequestPool(g, 16, 0.7, 2000, 27)
		spool := make([]wavedag.Request, len(spairs))
		for i, p := range spairs {
			spool[i] = wavedag.Request{Src: p[0], Dst: p[1]}
		}
		sevents, err := wavedag.NewFaultSchedule(g, 8000, 100, 50_000, 73)
		if err != nil {
			b.Fatal(err)
		}
		net := &wavedag.Network{Topology: g}
		eng, err := net.NewShardedEngine(wavedag.WithEngineWavelengthBudget(budget))
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		var ids []wavedag.ShardedID
		clock, next := 0.0, 0
		healAll := func() {
			for a := 0; a < g.NumArcs(); a++ {
				if g.ArcFailed(wavedag.ArcID(a)) {
					if _, err := eng.RestoreArc(wavedag.ArcID(a)); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		step := func(i int) {
			for next < len(sevents) && sevents[next].At <= clock {
				ev := sevents[next]
				next++
				if ev.Restore {
					if _, err := eng.RestoreArc(ev.Arc); err != nil {
						b.Fatal(err)
					}
				} else if _, err := eng.FailArc(ev.Arc); err != nil {
					b.Fatal(err)
				}
			}
			if next >= len(sevents) {
				healAll()
				next, clock = 0, 0
			}
			clock++
			id, err := eng.Add(spool[(i*13)%len(spool)])
			if err != nil {
				var nr route.ErrNoRoute
				if errors.As(err, &nr) || errors.Is(err, wavedag.ErrBudgetExceeded) {
					return // blocked arrival: holds nothing
				}
				b.Fatal(err)
			}
			ids = append(ids, id)
			if len(ids) > 150 {
				if err := eng.Remove(ids[0]); err != nil {
					b.Fatal(err)
				}
				ids = ids[1:]
			}
		}
		for i := 0; i < 400; i++ {
			step(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step(i)
		}
		b.StopTimer()
		healAll()
		if err := eng.Verify(); err != nil {
			b.Fatal(err)
		}
		if n, err := eng.NumLambda(); err != nil || n > budget {
			b.Fatalf("λ=%d past budget (%v)", n, err)
		}
	})
}

// BenchmarkAdaptChurn measures the self-tuning layout on a drifting
// hotspot: a layered stage graph forming one giant biconnected block —
// a component the seed region decomposition cannot cut — under
// neighbourhood traffic whose hot window relocates every few hundred
// events. The static engine serialises the whole block onto one big
// region lane; the adaptive engine re-splits whichever stretch turns
// hot (topological-prefix cuts land between layers), shrinking the
// per-event search space to a few layers. The uniform load pair bounds
// the adaptive bookkeeping overhead when there is nothing to adapt to.
// Run with -cpu=1,4 for the worker axis; cmd/bench -adapt emits the
// calibrated snapshot form (BENCH_PR10.json).
func BenchmarkAdaptChurn(b *testing.B) {
	topo := gen.LayeredDAG(15, 20, 0.25, 77)
	const period = 500
	toReqs := func(pairs [][2]wavedag.Vertex) []wavedag.Request {
		pool := make([]wavedag.Request, len(pairs))
		for i, p := range pairs {
			pool[i] = wavedag.Request{Src: p[0], Dst: p[1]}
		}
		return pool
	}
	loads := []struct {
		name string
		pool []wavedag.Request
	}{
		{"drift", toReqs(gen.DriftingHotspotRequestPool(topo, 30, 0.95, 6000, period, 157))},
		{"uniform", toReqs(gen.DriftingHotspotRequestPool(topo, 30, 0, 6000, period, 158))},
	}
	cfg := wavedag.DefaultAdaptiveConfig()
	cfg.HysteresisBatches = 4
	cfg.ResplitShare = 0.5
	// Stop splitting while lanes are still an order of magnitude larger
	// than the hot window: tiny lanes would push window-straddling
	// traffic onto the serialised overlay and forfeit the win.
	cfg.MinRegionArcs = 256
	for _, load := range loads {
		for _, adaptive := range []bool{false, true} {
			mode := "static"
			// Min-load routing is the paper's load-balancing policy and
			// the one whose per-event cost scales with the lane graph —
			// exactly what re-splitting a hot region shrinks.
			opts := []wavedag.ShardedOption{
				wavedag.WithSubshardThreshold(64),
				wavedag.WithShardSessionOptions(wavedag.WithRoutingPolicy(wavedag.RouteMinLoad)),
			}
			if adaptive {
				mode = "adaptive"
				opts = append(opts, wavedag.WithRegionResplit(), wavedag.WithAdaptiveConfig(cfg))
			}
			b.Run(fmt.Sprintf("load=%s/mode=%s", load.name, mode), func(b *testing.B) {
				net := &wavedag.Network{Topology: topo}
				eng, err := net.NewShardedEngine(opts...)
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				pool := load.pool
				const liveTarget = 300
				ids := make([]wavedag.ShardedID, 0, liveTarget)
				next := 0 // sequential pool cursor: drift periods replay in order
				for len(ids) < liveTarget {
					id, err := eng.Add(pool[next%len(pool)])
					next++
					if err != nil {
						b.Fatal(err)
					}
					ids = append(ids, id)
				}
				const batch = 32
				ops := make([]wavedag.BatchOp, 0, batch)
				slots := make([]int, 0, batch/2)
				step := func(i int) {
					k := (i * 17) % len(ids)
					ops = append(ops, wavedag.RemoveOp(ids[k]), wavedag.AddOp(pool[next%len(pool)]))
					next++
					slots = append(slots, k)
					if len(ops) == batch {
						for j, res := range eng.ApplyBatch(ops) {
							if res.Err != nil {
								b.Fatal(res.Err)
							}
							if j%2 == 1 {
								ids[slots[j/2]] = res.ID
							}
						}
						ops, slots = ops[:0], slots[:0]
					}
				}
				// Warm through one full pool cycle so the hotspot has
				// visited every window and the adaptive engine has
				// settled into its re-split layout ("once drifted").
				for i := 0; next < len(pool); i++ {
					step(i)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					step(i)
				}
				b.StopTimer()
				if err := eng.Verify(); err != nil {
					b.Fatal(err)
				}
				st := eng.Stats()
				b.ReportMetric(float64(st.Resplits), "resplits")
				b.ReportMetric(float64(st.RegionShards), "lanes")
				b.ReportMetric(float64(st.OverlayLive), "overlay-live")
			})
		}
	}
}
