// Admission control: a budgeted session rejecting an over-capacity
// request, and the retry-alt-route strategy recovering it through a
// detour. The topology is a diamond — two arc-disjoint routes from the
// source to the sink — with a single wavelength per fiber, so the
// second request over the shortest route must either block or take the
// other branch.
//
//	go run ./examples/admission
package main

import (
	"errors"
	"fmt"
	"log"

	"wavedag"
)

func main() {
	// s -> {a, b} -> t: no internal cycle (the one undirected cycle
	// passes through the source and the sink), so admission runs the
	// O(path) Theorem-1 precheck: a request fits the budget exactly when
	// every arc of its route keeps load ≤ w.
	g := wavedag.NewGraph(4)
	const s, a, b, t = 0, 1, 2, 3
	g.MustAddArc(s, a)
	g.MustAddArc(a, t)
	g.MustAddArc(s, b)
	g.MustAddArc(b, t)

	net := &wavedag.Network{Topology: g}

	// A budget of one wavelength and the default "reject" strategy.
	sess, err := net.NewSession(wavedag.WithWavelengthBudget(1))
	if err != nil {
		log.Fatal(err)
	}
	req := wavedag.Request{Src: s, Dst: t}
	if _, err := sess.Add(req); err != nil {
		log.Fatal(err)
	}
	fmt.Println("request 1: accepted (shortest route s->a->t, λ0)")

	// The shortest route is now saturated: the same request again is
	// over budget and the reject strategy drops it.
	_, adm, err := sess.TryAdd(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request 2 (reject strategy): accepted=%v\n", adm.Accepted)
	if _, err := sess.Add(req); errors.Is(err, wavedag.ErrBudgetExceeded) {
		fmt.Println("  Add reports:", err)
	}

	// The same offered load under retry-alt-route: the strategy re-asks
	// a min-load router and recovers the request through s->b->t.
	retry, err := net.NewSession(
		wavedag.WithWavelengthBudget(1),
		wavedag.WithAdmissionStrategyName(wavedag.AdmissionRetryAltRoute),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := retry.Add(req); err != nil {
		log.Fatal(err)
	}
	id, adm, err := retry.TryAdd(req)
	if err != nil {
		log.Fatal(err)
	}
	p, err := retry.Path(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request 2 (retry-alt-route): accepted=%v retried=%v via %v\n",
		adm.Accepted, adm.Retried, p)

	st := retry.AdmissionStats()
	lambda, err := retry.NumLambda()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: %d offered, %d accepted (%d recovered on a detour), λ=%d ≤ budget %d\n",
		st.Requests, st.Accepted, st.Retried, lambda, retry.Budget())
}
