// Optical: provision a WDM optical backbone end to end — generate a
// layered internal-cycle-free topology, route an all-to-all-style demand
// set with two routing policies, assign wavelengths with the strongest
// applicable theorem, and compare fiber utilization and feasibility.
//
//	go run ./examples/optical
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"wavedag/internal/digraph"
	"wavedag/internal/gen"
	"wavedag/internal/route"
	"wavedag/internal/wdm"
)

func main() {
	// A 30-node internal-cycle-free backbone: 20 internal routers fed by
	// 5 ingress and drained by 5 egress points.
	topo, err := gen.RandomNoInternalCycleDAG(20, 5, 5, 0.25, 2024)
	if err != nil {
		log.Fatal(err)
	}
	net := &wdm.Network{Topology: topo, Wavelengths: 24}

	reqs := route.AllToAll(topo)
	if len(reqs) > 120 {
		reqs = reqs[:120]
	}
	fmt.Printf("topology: %d nodes, %d fibers, W=%d wavelengths per fiber\n",
		topo.NumVertices(), topo.NumArcs(), net.Wavelengths)
	fmt.Printf("demand: %d requests\n\n", len(reqs))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tload π\tλ used\tmethod\tfeasible\tADMs")
	for _, policy := range []wdm.RoutingPolicy{wdm.RouteShortest, wdm.RouteMinLoad} {
		p, err := net.Provision(reqs, policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%v\t%d\n",
			policy, p.Pi, p.NumLambda, p.Method, p.Feasible, p.ADMs)
	}
	tw.Flush()

	// Because the topology has no internal cycle, Theorem 1 guarantees
	// λ = π: better routing (lower load) translates one-for-one into
	// fewer wavelengths — the operational payoff of the paper's result.
	p, err := net.Provision(reqs, wdm.RouteMinLoad)
	if err != nil {
		log.Fatal(err)
	}
	util := net.Utilization(p)
	hottest, hot := 0, 0.0
	for a, u := range util {
		if u > hot {
			hottest, hot = a, u
		}
	}
	arc := topo.Arc(digraph.ArcID(hottest))
	fmt.Printf("\nhottest fiber: %s -> %s at %.0f%% of capacity\n",
		topo.VertexName(arc.Tail), topo.VertexName(arc.Head), hot*100)
	fmt.Printf("wavelength λ0 carries %d fiber segments\n",
		len(wdm.LambdaPlan(topo, p, 0)))
}
