// Served: the serving front-end's contract on a live engine — a
// submission acked through the write coalescer, a burst that overruns
// the queue and gets shed with retry-after hints, a client riding out
// the overload with jittered backoff, and a graceful drain that
// answers every in-flight request before closing the engine.
//
//	go run ./examples/served
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"wavedag"
)

func main() {
	// A ladder of diamonds: enough parallel structure that requests
	// conflict on shared arcs but always have a route.
	const rungs = 6
	g := wavedag.NewGraph(2 + 2*rungs)
	src, dst := wavedag.Vertex(0), wavedag.Vertex(1)
	for i := 0; i < rungs; i++ {
		a, b := wavedag.Vertex(2+2*i), wavedag.Vertex(3+2*i)
		g.MustAddArc(src, a)
		g.MustAddArc(a, b)
		g.MustAddArc(b, dst)
	}

	net := &wavedag.Network{Topology: g}
	eng, err := net.NewShardedEngine()
	if err != nil {
		log.Fatal(err)
	}

	// A deliberately tiny server: a 2-deep queue and 4-op batches make
	// overload (and therefore shedding) easy to demonstrate.
	srv, err := wavedag.NewServer(eng,
		wavedag.WithQueueCapacity(2),
		wavedag.WithMaxBatch(4),
		wavedag.WithLatencyCap(2*time.Millisecond),
		wavedag.WithServeSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// 1. The happy path: one submission, one definitive ack.
	resp := srv.Submit(ctx, wavedag.AddRequest(src, dst))
	if resp.Err != nil {
		log.Fatal(resp.Err)
	}
	fmt.Printf("acked:      add -> id %v (live=%d)\n", resp.ID, eng.Len())

	// 2. Overload: a burst far past the queue bound. Every submission
	// still gets a definitive answer — acked or shed, never silence —
	// and shed verdicts carry a retry-after hint.
	const burst = 60
	futures := make([]<-chan wavedag.ServeResponse, burst)
	for i := range futures {
		futures[i] = srv.SubmitAsync(ctx, wavedag.AddRequest(src, dst))
	}
	acked, shed := 0, 0
	var hint time.Duration
	for _, f := range futures {
		r := <-f
		switch {
		case r.Err == nil:
			acked++
		case errors.Is(r.Err, wavedag.ErrShed):
			shed++
			hint = r.RetryAfter
		default:
			log.Fatalf("unexpected outcome: %v", r.Err)
		}
	}
	fmt.Printf("burst:      %d submissions -> %d acked, %d shed (all definitive)\n", burst, acked, shed)
	if shed > 0 {
		fmt.Printf("shed hint:  retry after ~%v (transient: %v)\n",
			hint.Round(time.Millisecond), wavedag.IsTransient(wavedag.ErrShed))
	}

	// 3. A retrying client rides out the same overload: Do backs off
	// (jittered, honouring the hint) and resubmits until the ack.
	for i := 0; i < burst; i++ { // re-saturate the queue
		srv.SubmitAsync(ctx, wavedag.AddRequest(src, dst))
	}
	client := wavedag.NewServeClient(srv, wavedag.RetryPolicy{
		MaxAttempts: 8, Base: time.Millisecond, Max: 20 * time.Millisecond,
	}, 7)
	r := client.Do(ctx, wavedag.AddRequest(src, dst))
	if r.Err != nil {
		log.Fatal(r.Err)
	}
	fmt.Printf("client.Do:  acked after %d attempt(s)\n", r.Attempts)

	// 4. Graceful drain: in-flight work is answered, then the engine
	// closes; reads keep serving from the final snapshot, and later
	// submissions are definitively refused.
	last := srv.SubmitAsync(ctx, wavedag.AddRequest(src, dst))
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if lr := <-last; lr.Err == nil {
		fmt.Println("drain:      in-flight request acked before close")
	} else {
		fmt.Printf("drain:      in-flight request answered: %v\n", lr.Err)
	}
	post := srv.Submit(ctx, wavedag.AddRequest(src, dst))
	fmt.Printf("post-drain: submit -> %v\n", post.Err)
	st := srv.Stats()
	fmt.Printf("ledger:     submitted=%d acked=%d failed=%d shed=%d expired=%d (balanced=%v)\n",
		st.Submitted, st.Acked, st.Failed, st.Shed, st.Expired,
		st.Submitted == st.Acked+st.Failed+st.Shed+st.Expired)
	fmt.Printf("post-close: engine still answers reads: live=%d, π=%d\n", eng.Len(), eng.Pi())
}
