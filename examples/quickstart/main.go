// Quickstart: build a small DAG, route a handful of dipaths on it, and
// color them with the minimum number of wavelengths using Theorem 1 of
// Bermond & Cosnard (IPDPS 2007).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wavedag"
)

func main() {
	// A tiny backbone: two feeders joining a shared spine 2 -> 3 -> 4,
	// then splitting again. No internal cycle: the only undirected cycles
	// pass through sources/sinks.
	g := wavedag.NewGraph(7)
	g.MustAddArc(0, 2) // feeder A
	g.MustAddArc(1, 2) // feeder B
	g.MustAddArc(2, 3) // spine
	g.MustAddArc(3, 4) // spine
	g.MustAddArc(4, 5) // exit A
	g.MustAddArc(4, 6) // exit B

	fam := wavedag.Family{
		wavedag.MustPath(g, 0, 2, 3, 4, 5),
		wavedag.MustPath(g, 1, 2, 3, 4, 6),
		wavedag.MustPath(g, 2, 3, 4),
		wavedag.MustPath(g, 3, 4, 5),
		wavedag.MustPath(g, 1, 2, 3),
	}

	fmt.Printf("load π = %d (max dipaths through one arc)\n", wavedag.Load(g, fam))
	fmt.Printf("internal cycle: %v — Theorem 1 guarantees w = π\n", wavedag.HasInternalCycle(g))

	res, method, err := wavedag.Color(g, fam)
	if err != nil {
		log.Fatal(err)
	}
	if err := wavedag.VerifyColoring(g, fam, res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("colored with %d wavelengths via %s\n", res.NumColors, method)
	for i, p := range fam {
		fmt.Printf("  λ%d  %v\n", res.Colors[i], p)
	}
}
