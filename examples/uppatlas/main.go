// UPP atlas: explores the UPP-DAG class the paper introduces in §4.
// It checks the unique-dipath property on the paper's instances, verifies
// the structural facts (Helly property, π = ω, no induced K_{2,3}),
// and walks the Theorem 7 tightness series, printing the w/π ratio
// converging to 4/3.
//
//	go run ./examples/uppatlas
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"wavedag"
	"wavedag/internal/check"
	"wavedag/internal/conflict"
	"wavedag/internal/gen"
	"wavedag/internal/load"
	"wavedag/internal/upp"
)

func main() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)

	// 1. Which paper instances are UPP?
	fmt.Println("UPP membership of the paper's instances:")
	fmt.Fprintln(tw, "instance\tUPP\tinternal cycles")
	g3, _ := gen.Fig3()
	report(tw, "Figure 3", g3)
	gH, _ := gen.Havet()
	report(tw, "Figure 9 (Havet)", gH)
	gG, _, err := gen.InternalCycleGadget(4)
	if err != nil {
		log.Fatal(err)
	}
	report(tw, "Figure 5 gadget k=4", gG)
	gS, _, err := gen.Fig1Staircase(4)
	if err != nil {
		log.Fatal(err)
	}
	report(tw, "Figure 1 staircase k=4", gS)
	tw.Flush()

	// 2. Property 3 on the Havet instance: π equals the clique number.
	famH := func() wavedag.Family { _, f := gen.Havet(); return f }()
	cg := conflict.FromFamily(gH, famH)
	fmt.Printf("\nProperty 3 on Figure 9: π = %d, ω(conflict graph) = %d\n",
		load.Pi(gH, famH), cg.CliqueNumber())
	if _, _, found := cg.FindK23(); found {
		log.Fatal("Corollary 5 violated: induced K_{2,3} present")
	}
	fmt.Println("Corollary 5 on Figure 9: no induced K_{2,3} — confirmed")

	// 3. Unique routing: every reachable pair has exactly one dipath.
	router, err := upp.NewRouter(gH)
	if err != nil {
		log.Fatal(err)
	}
	all := router.AllPairsFamily()
	fmt.Printf("unique dipaths between reachable pairs: %d\n", len(all))

	// 4. The Theorem 7 series: replicate the Havet family h times.
	fmt.Println("\nTheorem 7 tightness series (π = 2h, w = ⌈8h/3⌉):")
	fmt.Fprintln(tw, "h\tπ\tw\t⌈4π/3⌉\tw/π")
	for _, h := range []int{1, 2, 3, 6, 9, 12} {
		fam := famH.Replicate(h)
		res, err := wavedag.ColorOneInternalCycleUPP(gH, fam)
		if err != nil {
			log.Fatal(err)
		}
		if err := check.WavelengthsWithinBound(gH, fam, res.Colors, 4, 3); err != nil {
			log.Fatal(err)
		}
		bound := (4*res.Pi + 2) / 3
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.3f\n",
			h, res.Pi, res.NumColors, bound, float64(res.NumColors)/float64(res.Pi))
	}
	tw.Flush()
	fmt.Println("\nthe ratio stays ≤ 4/3 and hits it at multiples of 3 — the bound is tight.")
}

func report(tw *tabwriter.Writer, name string, g *wavedag.Graph) {
	isUPP, _, _, err := wavedag.IsUPP(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(tw, "%s\t%v\t%d\n", name, isUPP, wavedag.InternalCycleCount(g))
}
