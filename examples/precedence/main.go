// Precedence: the parallel-computing reading of the paper. The DAG is a
// precedence graph of a pipelined computation; a dipath is a producer-to-
// consumer data stream routed through intermediate stages; a "wavelength"
// is a physical channel (register bank, DMA lane) that the stream holds
// exclusively on every hop. The load π is the worst channel pressure on a
// single dependency edge; Theorem 1 says that on precedence graphs
// without internal cycles, π channels always suffice — no fragmentation.
//
//	go run ./examples/precedence
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"wavedag"
	"wavedag/internal/gen"
)

func main() {
	// A 6-stage pipeline, 4 operators per stage (a layered DAG, which can
	// have no internal cycle only if every operator is either a stage-0
	// source or a terminal sink or lies on a forest of internal edges —
	// so instead we use the generator that guarantees the property).
	g, err := gen.RandomNoInternalCycleDAG(24, 4, 4, 0.25, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Data streams: random producer-to-consumer chains.
	streams := gen.RandomWalkFamily(g, 60, 8, 99)
	pi := wavedag.Load(g, streams)

	res, method, err := wavedag.Color(g, streams)
	if err != nil {
		log.Fatal(err)
	}
	if err := wavedag.VerifyColoring(g, streams, res); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("precedence graph: %d operators, %d dependency edges\n",
		g.NumVertices(), g.NumArcs())
	fmt.Printf("streams: %d, channel pressure π = %d\n", len(streams), pi)
	fmt.Printf("channels allocated: %d (method %s)\n\n", res.NumColors, method)
	if res.NumColors != pi {
		log.Fatalf("Theorem 1 violated?! %d channels for pressure %d", res.NumColors, pi)
	}

	// Channel occupancy histogram.
	occupancy := make([]int, res.NumColors)
	for _, c := range res.Colors {
		occupancy[c]++
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "channel\tstreams")
	for c, n := range occupancy {
		fmt.Fprintf(tw, "ch%d\t%d\n", c, n)
	}
	tw.Flush()

	// Contrast: a schedule whose precedence graph HAS an internal cycle
	// can need more channels than its pressure — the paper's Figure 3.
	g3, fam3 := wavedag.Figure3Instance()
	res3, method3, err := wavedag.Color(g3, fam3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninternal-cycle pipeline (Figure 3): pressure π = %d but %d channels needed (%s)\n",
		wavedag.Load(g3, fam3), res3.NumColors, method3)

	// And how often do random sparse precedence graphs avoid internal
	// cycles in the first place?
	rng := rand.New(rand.NewSource(5))
	avoided := 0
	const trials = 200
	for t := 0; t < trials; t++ {
		h := gen.RandomDAG(20, 25, rng.Int63())
		if !wavedag.HasInternalCycle(h) {
			avoided++
		}
	}
	fmt.Printf("random sparse DAGs (20 ops, 25 edges) without internal cycle: %d/%d\n",
		avoided, trials)
}
