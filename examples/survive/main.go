// Survive: a fiber cut on a live budgeted session, the restoration
// storm it triggers, graceful degradation to a dark entry, and revival
// after repair. The topology is a diamond — two arc-disjoint routes
// from the source to the sink — with a one-wavelength budget: cutting
// the primary branch reroutes its path over the other branch; cutting
// both branches leaves nothing to reroute onto, so the path parks dark
// (retained, not dropped) and comes back when a branch heals.
//
//	go run ./examples/survive
package main

import (
	"fmt"
	"log"

	"wavedag"
)

func main() {
	// s -> {a, b} -> t: two arc-disjoint routes, so one cut is
	// survivable and two are not.
	g := wavedag.NewGraph(4)
	const s, a, b, t = 0, 1, 2, 3
	sa := g.MustAddArc(s, a)
	g.MustAddArc(a, t)
	sb := g.MustAddArc(s, b)
	g.MustAddArc(b, t)

	net := &wavedag.Network{Topology: g}
	sess, err := net.NewSession(wavedag.WithWavelengthBudget(1))
	if err != nil {
		log.Fatal(err)
	}
	id, err := sess.Add(wavedag.Request{Src: s, Dst: t})
	if err != nil {
		log.Fatal(err)
	}
	show := func(when string) {
		if dark, _ := sess.IsDark(id); dark {
			fmt.Printf("%-28s request parked dark (live=%d, dark=%d)\n",
				when, sess.Len(), sess.DarkLive())
			return
		}
		p, err := sess.Path(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s route %v\n", when, p.Vertices())
	}
	show("provisioned:")

	// Cut the branch the request rides: the restoration storm reroutes
	// it over the other branch within the same budget.
	p, err := sess.Path(id)
	if err != nil {
		log.Fatal(err)
	}
	first := p.Arcs()[0] // s->a or s->b, whichever was chosen
	rep, err := sess.FailArc(first)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cut %d: affected=%d restored=%d parked=%d\n",
		first, rep.Affected, rep.Restored, rep.Parked)
	show("after first cut:")

	// Cut the other branch too: no route is left, so the storm parks
	// the path dark instead of dropping it.
	other := sb
	if first == sb {
		other = sa
	}
	rep, err = sess.FailArc(other)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cut %d: affected=%d restored=%d parked=%d\n",
		other, rep.Affected, rep.Restored, rep.Parked)
	show("after second cut:")

	// Repair one branch: the re-admission sweep revives the dark entry.
	revived, err := sess.RestoreArc(first)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restore %d: revived=%d\n", first, revived)
	show("after repair:")

	fs := sess.FailureStats()
	fmt.Printf("totals: cuts=%d affected=%d restored=%d parked=%d revived=%d\n",
		fs.Cuts, fs.Affected, fs.Restored, fs.Parked, fs.Revived)
	if err := sess.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("session verifies clean")
}
